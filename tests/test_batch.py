"""Batch engine: event-vs-batch bit-identity and the engine API.

The batch fast path (:mod:`repro.sim.batch`) promises results
*bit-identical* to the discrete-event kernel.  These properties mirror
the dense-vs-skip equivalence contract in ``test_properties.py``: each
of the five controllers gets its own event-vs-batch property, with and
without the background refresh engine, plus tests that the redesigned
``simulate(spec, engine=...)`` API keeps the engine choice out of the
cache identity.
"""

from __future__ import annotations

import dataclasses
import warnings

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.cache.controller import CachedNaturalOrderController
from repro.core.l2stream import L2StreamingController
from repro.core.smc import build_smc_system
from repro.cpu.kernels import KERNELS
from repro.cpu.streams import Alignment
from repro.memsys.config import MemorySystemConfig
from repro.naturalorder.controller import NaturalOrderController
from repro.naturalorder.random_driver import RandomAccessDriver
from repro.sim.batch import (
    ENGINES,
    batch_unsupported_reason,
    canonical_engine,
    list_engines,
    resolve_engine,
    run_smc_batch,
)
from repro.sim.engine import run_smc
from repro.sim.runner import (
    RunSpec,
    default_engine,
    set_default_engine,
    simulate,
    simulate_kernel,
)

kernel_names = st.sampled_from(sorted(KERNELS))
orgs = st.sampled_from(["cli", "pi"])
alignments = st.sampled_from([Alignment.ALIGNED, Alignment.STAGGERED])


def config_for(org: str) -> MemorySystemConfig:
    return getattr(MemorySystemConfig, org)()


class TestEventBatchEquivalence:
    """The batch engine must be observationally identical to the event
    kernel on every supported configuration — same result record, field
    for field, including stall accounting and refresh interference."""

    @given(
        kernel=kernel_names,
        org=orgs,
        alignment=alignments,
        length=st.sampled_from([8, 16, 32]),
        depth=st.sampled_from([4, 16]),
        stride=st.sampled_from([1, 2, 7]),
        refresh=st.booleans(),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_smc_batch_is_exact(
        self, kernel, org, alignment, length, depth, stride, refresh
    ):
        config = config_for(org)
        event = run_smc(build_smc_system(
            KERNELS[kernel], config, length=length, fifo_depth=depth,
            stride=stride, alignment=alignment, refresh=refresh,
        ))
        batch = run_smc_batch(
            KERNELS[kernel], config, length=length, fifo_depth=depth,
            stride=stride, alignment=alignment, refresh=refresh,
        )
        assert event == batch

    @given(
        kernel=kernel_names,
        org=orgs,
        alignment=alignments,
        length=st.sampled_from([8, 16, 32]),
        refresh=st.booleans(),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_natural_order_batch_is_exact(
        self, kernel, org, alignment, length, refresh
    ):
        def run(engine):
            controller = NaturalOrderController(
                config_for(org), refresh=refresh
            )
            return controller.run(
                KERNELS[kernel], length=length, alignment=alignment,
                engine=engine,
            )

        assert run("event") == run("batch")

    @given(
        kernel=kernel_names,
        org=orgs,
        length=st.sampled_from([8, 16, 32]),
        refresh=st.booleans(),
    )
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_cached_natural_order_batch_is_exact(
        self, kernel, org, length, refresh
    ):
        def run(engine):
            controller = CachedNaturalOrderController(
                config_for(org), refresh=refresh
            )
            return controller.run(KERNELS[kernel], length=length,
                                  engine=engine)

        assert run("event") == run("batch")

    @given(
        kernel=kernel_names,
        org=orgs,
        length=st.sampled_from([8, 16, 32]),
        stride=st.sampled_from([1, 2, 4]),
        window=st.sampled_from([2, 8]),
        refresh=st.booleans(),
    )
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_l2_streaming_batch_is_exact(
        self, kernel, org, length, stride, window, refresh
    ):
        def run(engine):
            controller = L2StreamingController(
                config_for(org), prefetch_window=window, refresh=refresh
            )
            return controller.run(KERNELS[kernel], length=length,
                                  stride=stride, engine=engine)

        assert run("event") == run("batch")

    @given(
        org=orgs,
        transactions=st.sampled_from([4, 16, 48]),
        write_fraction=st.sampled_from([0.0, 0.3, 1.0]),
        seed=st.integers(min_value=1, max_value=64),
        refresh=st.booleans(),
    )
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_driver_batch_is_exact(
        self, org, transactions, write_fraction, seed, refresh
    ):
        def run(engine):
            driver = RandomAccessDriver(config_for(org), refresh=refresh)
            return driver.run(transactions, write_fraction=write_fraction,
                              seed=seed, engine=engine)

        assert run("event") == run("batch")


class TestEngineSelection:
    def test_canonical_engine_rejects_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            canonical_engine("warp")

    def test_engines_registry(self):
        assert ENGINES == ("event", "batch", "auto")
        listing = list_engines()
        for name in ENGINES:
            assert name in listing

    def test_core_configs_are_batch_supported(self):
        for org in ("cli", "pi"):
            assert batch_unsupported_reason(config_for(org)) is None

    def test_runtime_page_policy_is_gated(self):
        config = dataclasses.replace(config_for("cli"), page_policy="timeout")
        reason = batch_unsupported_reason(config)
        assert reason is not None
        with pytest.raises(ConfigurationError, match="cannot run this spec"):
            resolve_engine("batch", config)
        # auto silently falls back to the event kernel...
        assert resolve_engine("auto", config) == "event"
        # ...and the fallback actually simulates.
        spec = RunSpec(kernel="copy", organization=config,
                       length=32, fifo_depth=8, engine="auto")
        assert simulate(spec).cycles > 0

    def test_batch_run_rejects_unsupported_config(self):
        config = dataclasses.replace(config_for("cli"), page_policy="timeout")
        with pytest.raises(ConfigurationError):
            run_smc_batch(KERNELS["copy"], config, length=32, fifo_depth=8)

    def test_instrumented_runs_fall_back(self):
        assert resolve_engine("auto", config_for("cli"),
                              instrumented=True) == "event"
        with pytest.raises(ConfigurationError, match="instrument"):
            resolve_engine("batch", config_for("cli"), instrumented=True)


class TestSimulateEngineApi:
    def test_engines_agree_through_simulate(self):
        results = {
            engine: simulate(RunSpec(
                kernel="daxpy", organization="pi", length=64,
                fifo_depth=16, engine=engine,
            ))
            for engine in ENGINES
        }
        assert results["event"] == results["batch"] == results["auto"]

    def test_engine_argument_overrides_spec(self):
        spec = RunSpec(kernel="copy", organization="cli", length=32,
                       fifo_depth=8, engine="event")
        assert simulate(spec, engine="batch") == simulate(spec)

    def test_engine_is_not_part_of_cache_identity(self):
        specs = [
            RunSpec(kernel="daxpy", organization="cli", length=64,
                    fifo_depth=16, engine=engine)
            for engine in ENGINES
        ]
        keys = {spec.canonical_key() for spec in specs}
        assert len(keys) == 1

    def test_engine_round_trips_but_default_is_elided(self):
        spec = RunSpec(kernel="copy", organization="cli", engine="batch")
        assert spec.to_dict()["engine"] == "batch"
        assert RunSpec.from_dict(spec.to_dict()).engine == "batch"
        assert "engine" not in RunSpec(
            kernel="copy", organization="cli"
        ).to_dict()

    def test_cache_entry_is_shared_across_engines(self, tmp_path):
        from repro.exec import execution

        spec = RunSpec(kernel="copy", organization="cli", length=32,
                       fifo_depth=8)
        with execution(cache=tmp_path):
            first = simulate(spec, engine="event")
            second = simulate(spec, engine="batch")
        assert first == second

    def test_default_engine_is_session_scoped(self):
        assert default_engine() == "auto"
        previous = set_default_engine("event")
        try:
            assert previous == "auto"
            assert default_engine() == "event"
        finally:
            set_default_engine(previous)
        assert default_engine() == "auto"

    def test_simulate_kernel_is_deprecated_but_equivalent(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = simulate_kernel("daxpy", "cli", length=64,
                                     fifo_depth=16)
        deprecations = [
            w for w in caught
            if issubclass(w.category, DeprecationWarning)
        ]
        # Exactly one warning per call: the alias warns at its own
        # call site and nothing underneath it warns again.
        assert len(deprecations) == 1
        assert "RunSpec" in str(deprecations[0].message)
        assert legacy == simulate(RunSpec(
            kernel="daxpy", organization="cli", length=64, fifo_depth=16,
        ))


class TestEngineCli:
    def test_list_engines_flag(self, capsys):
        from repro.sim.cli import main

        assert main(["--list-engines"]) == 0
        out = capsys.readouterr().out
        assert "event" in out and "batch" in out and "auto" in out

    def test_engine_flag_matches_event_run(self, capsys):
        from repro.sim.cli import main

        assert main(["daxpy", "--length", "128", "--engine", "batch"]) == 0
        batch_out = capsys.readouterr().out
        assert main(["daxpy", "--length", "128", "--engine", "event"]) == 0
        event_out = capsys.readouterr().out
        assert batch_out == event_out

    def test_engine_flag_reaches_baselines(self, capsys):
        from repro.sim.cli import main

        for engine in ("event", "batch"):
            assert main([
                "copy", "--baseline", "l2-streaming", "--length", "64",
                "--engine", engine,
            ]) == 0
        runs = capsys.readouterr().out.split("kernel")
        assert runs[1].strip() == runs[2].strip()

    def test_batch_engine_refuses_instrumented_cli_run(self, capsys):
        from repro.sim.cli import main

        assert main(["daxpy", "--stats", "--engine", "batch"]) == 1
        err = capsys.readouterr().err
        assert "engine 'batch' cannot run this spec" in err

    def test_experiments_list_engines(self, capsys):
        from repro.experiments.cli import main

        assert main(["--list-engines"]) == 0
        assert "batch" in capsys.readouterr().out
