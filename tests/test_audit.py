"""Tests for the independent protocol auditor."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.rdram.audit import audit_trace
from repro.rdram.packets import (
    BusDirection,
    ColCommand,
    ColPacket,
    DataPacket,
    RowCommand,
    RowPacket,
)


def act(bank, row, start):
    return RowPacket(RowCommand.ACT, bank, row, start)


def prer(bank, start, via_col=False):
    return RowPacket(RowCommand.PRER, bank, None, start, via_col=via_col)


def col(bank, row, column, start, command=ColCommand.RD):
    return ColPacket(command, bank, row, column, start)


def data(bank, start, col_start, direction=BusDirection.READ):
    return DataPacket(direction, bank, start, col_start)


class TestLegalTraces:
    def test_empty_trace(self):
        report = audit_trace([])
        assert report.row_packets == 0

    def test_minimal_read(self, timing):
        report = audit_trace([
            act(0, 0, 0),
            col(0, 0, 0, 11),
            data(0, 21, 11),
        ])
        assert report.row_packets == 1
        assert report.col_packets == 1
        assert report.data_packets == 1

    def test_device_generated_trace_passes(self, device):
        device.issue_act(0, 0, 0)
        device.issue_col(0, 0, 0, 0, BusDirection.WRITE)
        device.issue_col(0, 0, 1, 0, BusDirection.READ, precharge=True)
        device.issue_act(1, 3, 0)
        device.issue_col(1, 3, 5, 0, BusDirection.READ)
        report = audit_trace(device.trace)
        assert report.turnarounds == 1
        assert report.banks_touched == 2

    def test_via_col_precharge_skips_row_bus_check(self):
        # A via-col PRER overlapping an ACT's row-bus slot is legal.
        audit_trace([
            act(0, 0, 0),
            col(0, 0, 0, 11),
            data(0, 21, 11),
            act(1, 0, 20),
            prer(0, 20, via_col=True),
        ])


class TestViolations:
    def test_row_bus_collision(self):
        with pytest.raises(ProtocolError, match="row bus"):
            audit_trace([act(0, 0, 0), act(1, 0, 2)])

    def test_t_rr_violation(self):
        # Packets spaced by t_pack but closer than t_RR.
        with pytest.raises(ProtocolError, match="t_RR"):
            audit_trace([act(0, 0, 0), act(1, 0, 4)])

    def test_act_to_open_bank(self):
        with pytest.raises(ProtocolError, match="ACT to open bank"):
            audit_trace([act(0, 0, 0), act(0, 1, 40)])

    def test_t_rc_violation(self):
        trace = [
            act(0, 0, 0),
            prer(0, 20),
            act(0, 1, 30),  # >= t_RP after PRER but < t_RC after ACT
        ]
        with pytest.raises(ProtocolError, match="t_RC"):
            audit_trace(trace)

    def test_t_rp_violation(self):
        trace = [
            act(0, 0, 0),
            prer(0, 30),
            act(0, 1, 36),  # t_RC ok at 36? no: t_RC=34 ok, t_RP=10 not
        ]
        with pytest.raises(ProtocolError, match="t_RP"):
            audit_trace(trace)

    def test_prer_to_closed_bank(self):
        with pytest.raises(ProtocolError, match="PRER to closed"):
            audit_trace([prer(0, 0)])

    def test_t_ras_violation(self):
        with pytest.raises(ProtocolError, match="t_RAS"):
            audit_trace([act(0, 0, 0), prer(0, 10)])

    def test_t_cpol_violation(self):
        trace = [
            act(0, 0, 0),
            col(0, 0, 0, 30),
            prer(0, 31),  # overlaps the 30-33 COL by 3 > t_CPOL cycles
            data(0, 40, 30),
        ]
        with pytest.raises(ProtocolError, match="t_CPOL"):
            audit_trace(trace)

    def test_col_bus_collision(self):
        trace = [
            act(0, 0, 0),
            col(0, 0, 0, 11),
            col(0, 0, 1, 13),
            data(0, 21, 11),
            data(0, 25, 13),
        ]
        with pytest.raises(ProtocolError, match="col bus"):
            audit_trace(trace)

    def test_t_rcd_violation(self):
        with pytest.raises(ProtocolError, match="t_RCD"):
            audit_trace([act(0, 0, 0), col(0, 0, 0, 5), data(0, 15, 5)])

    def test_col_to_wrong_row(self):
        with pytest.raises(ProtocolError, match="open row"):
            audit_trace([act(0, 0, 0), col(0, 3, 0, 11), data(0, 21, 11)])

    def test_data_bus_collision(self):
        trace = [
            act(0, 0, 0),
            col(0, 0, 0, 11),
            col(0, 0, 1, 15),
            data(0, 21, 11),
            data(0, 23, 15),  # should be 25
        ]
        with pytest.raises(ProtocolError, match="data bus"):
            audit_trace(trace)

    def test_data_latency_mismatch(self):
        with pytest.raises(ProtocolError, match="does not follow"):
            audit_trace([act(0, 0, 0), col(0, 0, 0, 11), data(0, 30, 11)])

    def test_turnaround_violation(self):
        trace = [
            act(0, 0, 0),
            col(0, 0, 0, 11, ColCommand.WR),
            data(0, 19, 11, BusDirection.WRITE),
            col(0, 0, 1, 15, ColCommand.RD),
            data(0, 25, 15, BusDirection.READ),  # needs >= 23 + t_RW
        ]
        with pytest.raises(ProtocolError, match="t_RW"):
            audit_trace(trace)

    def test_unknown_record(self):
        class Bogus:
            start = 0

        with pytest.raises(ProtocolError, match="unknown"):
            audit_trace([Bogus()])

    def test_bank_out_of_range(self):
        with pytest.raises(ProtocolError, match="outside"):
            audit_trace([act(99, 0, 0)])
