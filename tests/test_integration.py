"""Integration tests: the paper's cross-cutting claims, end to end.

Each test reproduces a sentence of the paper's Section 6 / abstract on
the full stack (placement -> SMC or baseline controller -> device
model -> bandwidth accounting), with the protocol auditor active where
runtimes allow.
"""

from __future__ import annotations

import pytest

from repro.analytic.cache import natural_order_bound
from repro.analytic.smc import smc_bound
from repro.cpu.kernels import PAPER_KERNELS, get_kernel
from repro.memsys.config import MemorySystemConfig
from repro.sim.runner import RunSpec, simulate

ORGS = ("cli", "pi")


def config_for(org):
    return getattr(MemorySystemConfig, org)()


class TestSmcBeatsNaturalOrder:
    @pytest.mark.parametrize("org", ORGS)
    @pytest.mark.parametrize("kernel_name", list(PAPER_KERNELS))
    def test_deep_fifo_smc_beats_cache_limit(self, org, kernel_name):
        """'An SMC configured with appropriate FIFO depths can always
        exploit available memory bandwidth better than natural-order
        cacheline accesses.'"""
        kernel = get_kernel(kernel_name)
        config = config_for(org)
        smc = simulate(RunSpec(kernel, config, length=1024, fifo_depth=128))
        cache = natural_order_bound(
            config, kernel.num_read_streams, kernel.num_write_streams
        )
        assert smc.percent_of_peak > cache.percent_of_peak

    def test_improvement_factors_match_abstract(self):
        """'...can improve performance by factors of 1.18 to 2.25' —
        reproduced within ten percent at both ends."""
        factors = []
        for kernel_name in PAPER_KERNELS:
            kernel = get_kernel(kernel_name)
            for org in ORGS:
                config = config_for(org)
                smc = simulate(RunSpec(kernel, config, length=1024, fifo_depth=128))
                cache = natural_order_bound(
                    config, kernel.num_read_streams, kernel.num_write_streams
                ).percent_of_peak
                factors.append(smc.percent_of_peak / cache)
        assert min(factors) == pytest.approx(1.18, rel=0.10)
        assert max(factors) == pytest.approx(2.25, rel=0.10)

    def test_copy_long_vector_near_peak(self):
        """'For copy with streams of 1024 elements, the SMC exploits
        over 98% of the system's peak bandwidth' (we allow 97%)."""
        result = simulate(RunSpec("copy", "cli", length=1024, fifo_depth=128))
        assert result.percent_of_peak > 97.0

    @pytest.mark.parametrize("depth", [16, 32, 64, 128])
    @pytest.mark.parametrize("kernel_name", list(PAPER_KERNELS))
    def test_smc_beats_natural_order_on_cli_at_appropriate_depths(
        self, kernel_name, depth
    ):
        """'An SMC configured with appropriate FIFO depths can always
        exploit available memory bandwidth better than natural-order
        cacheline accesses' — checked at every depth from 16 up for
        long CLI vectors (at f=8 individual kernels can resonate below
        the bound, in our model as presumably in theirs)."""
        kernel = get_kernel(kernel_name)
        config = config_for("cli")
        cache = natural_order_bound(
            config, kernel.num_read_streams, kernel.num_write_streams
        ).percent_of_peak
        best_smc = max(
            simulate(RunSpec(
                kernel, config, length=1024, fifo_depth=depth,
                alignment=alignment,
            )).percent_of_peak
            for alignment in ("staggered", "aligned")
        )
        assert best_smc > cache


class TestFifoDepthBehavior:
    @pytest.mark.parametrize("kernel_name", ["daxpy", "vaxpy"])
    def test_long_vectors_favor_deep_fifos(self, kernel_name):
        shallow = simulate(RunSpec(kernel_name, "cli", length=1024, fifo_depth=8))
        deep = simulate(RunSpec(kernel_name, "cli", length=1024, fifo_depth=128))
        assert deep.percent_of_peak > shallow.percent_of_peak

    def test_short_vectors_penalize_deep_fifos(self):
        """Figure 7's descending 128-element curves: the startup delay
        makes the deepest FIFO worse than a mid-depth one."""
        mid = simulate(RunSpec("vaxpy", "cli", length=128, fifo_depth=32))
        deep = simulate(RunSpec("vaxpy", "cli", length=128, fifo_depth=128))
        assert mid.percent_of_peak > deep.percent_of_peak

    @pytest.mark.parametrize("org", ORGS)
    def test_deep_fifo_staggered_delivers_over_89_percent_of_bound(self, org):
        """'With deep FIFOs (64-128 elements) and long vectors, the SMC
        ... yields over 89% of the attainable bandwidth (defined by the
        analytic SMC performance bounds) for all benchmarks.'"""
        config = config_for(org)
        for kernel_name in PAPER_KERNELS:
            kernel = get_kernel(kernel_name)
            result = simulate(RunSpec(kernel, config, length=1024, fifo_depth=128))
            bound = smc_bound(
                config, kernel.num_read_streams, kernel.num_write_streams,
                1024, 128,
            ).percent_combined_limit
            assert result.percent_of_peak > 0.89 * bound


class TestAlignmentSensitivity:
    def test_pi_shallow_fifos_punish_aligned_vectors(self):
        """'A larger performance difference arises between the maximum
        and minimum bank-conflict simulations for SMC systems with PI
        organizations and FIFO depths of 32 elements or fewer.'"""
        for depth in (8, 16, 32):
            aligned = simulate(RunSpec(
                "daxpy", "pi", length=1024, fifo_depth=depth, alignment="aligned"
            ))
            staggered = simulate(RunSpec(
                "daxpy", "pi", length=1024, fifo_depth=depth, alignment="staggered"
            ))
            assert staggered.percent_of_peak - aligned.percent_of_peak > 5

    def test_cli_deep_fifos_insensitive_to_alignment(self):
        """'Vector alignment has little impact ... for SMC systems with
        CLI memory organizations ... with FIFOs deeper than 16
        elements.'"""
        for depth in (32, 64, 128):
            aligned = simulate(RunSpec(
                "daxpy", "cli", length=1024, fifo_depth=depth, alignment="aligned"
            ))
            staggered = simulate(RunSpec(
                "daxpy", "cli", length=1024, fifo_depth=depth, alignment="staggered"
            ))
            assert abs(
                staggered.percent_of_peak - aligned.percent_of_peak
            ) < 6

    def test_deep_fifo_good_even_with_bad_placement(self):
        """'With deep FIFOs and long vectors, the SMC can deliver good
        performance even for a sub-optimal data placement.'"""
        for org in ORGS:
            aligned = simulate(RunSpec(
                "vaxpy", org, length=1024, fifo_depth=128, alignment="aligned"
            ))
            assert aligned.percent_of_peak > 85


class TestProtocolSoundness:
    @pytest.mark.parametrize("org", ORGS)
    @pytest.mark.parametrize("kernel_name", list(PAPER_KERNELS))
    def test_smc_traces_audit_clean(self, org, kernel_name):
        result = simulate(RunSpec(
            kernel_name, org, length=256, fifo_depth=32, audit=True
        ))
        assert result.cycles > 0

    @pytest.mark.parametrize("org", ORGS)
    def test_aligned_and_strided_traces_audit_clean(self, org):
        simulate(RunSpec(
            "vaxpy", org, length=128, fifo_depth=16, alignment="aligned",
            audit=True,
        ))
        simulate(RunSpec(
            "vaxpy", org, length=128, fifo_depth=32, stride=12, audit=True
        ))

    @pytest.mark.parametrize(
        "policy", ["round-robin", "bank-aware", "speculative-precharge"]
    )
    def test_all_policies_audit_clean(self, policy):
        for org in ORGS:
            result = simulate(RunSpec(
                "daxpy", org, length=256, fifo_depth=32, policy=policy,
                audit=True,
            ))
            assert result.percent_of_peak > 30


class TestPolicyExtensions:
    def test_bank_aware_helps_conflicted_cli(self):
        """Hong's thesis policy: avoiding busy banks recovers bandwidth
        lost to conflicts on a worst-case placement (aligned vectors,
        shallow FIFOs on CLI)."""
        base = simulate(RunSpec(
            "daxpy", "cli", length=1024, fifo_depth=8, alignment="aligned"
        ))
        aware = simulate(RunSpec(
            "daxpy", "cli", length=1024, fifo_depth=8, alignment="aligned",
            policy="bank-aware",
        ))
        assert aware.percent_of_peak > base.percent_of_peak

    def test_bank_aware_never_catastrophic(self):
        """The heuristic can lose to round-robin in resonant
        placements, but must stay within a third of it everywhere."""
        for org in ORGS:
            for depth in (8, 16, 64):
                for alignment in ("aligned", "staggered"):
                    base = simulate(RunSpec(
                        "vaxpy", org, length=1024, fifo_depth=depth,
                        alignment=alignment,
                    ))
                    aware = simulate(RunSpec(
                        "vaxpy", org, length=1024, fifo_depth=depth,
                        alignment=alignment, policy="bank-aware",
                    ))
                    assert aware.percent_of_peak > (
                        0.66 * base.percent_of_peak
                    )

    def test_policies_do_not_change_data_moved(self):
        results = {
            policy: simulate(RunSpec(
                "daxpy", "pi", length=256, fifo_depth=32, policy=policy
            ))
            for policy in ("round-robin", "bank-aware", "speculative-precharge")
        }
        bytes_moved = {r.transferred_bytes for r in results.values()}
        assert len(bytes_moved) == 1


class TestRobustness:
    def test_smc_uniform_across_kernels(self):
        """'Performance for the SMC is uniformly good, regardless of
        the number of streams in the loop': spread under 6 points at
        deep FIFOs on long vectors."""
        for org in ORGS:
            values = [
                simulate(RunSpec(k, org, length=1024, fifo_depth=128)).percent_of_peak
                for k in PAPER_KERNELS
            ]
            assert max(values) - min(values) < 6

    def test_natural_order_spread_is_wide(self):
        """In contrast, the natural-order limit varies strongly with
        the stream count (44% to 80%)."""
        values = [
            natural_order_bound(
                config_for(org),
                get_kernel(k).num_read_streams,
                get_kernel(k).num_write_streams,
            ).percent_of_peak
            for org in ORGS
            for k in PAPER_KERNELS
        ]
        assert max(values) - min(values) > 25
