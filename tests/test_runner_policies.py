"""Tests for RunSpec's interleaving/page-policy override fields."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.memsys.config import Interleaving, MemorySystemConfig, PagePolicy
from repro.sim.runner import (
    RunSpec,
    apply_policy_overrides,
    simulate,
)


class TestNormalization:
    def test_redundant_overrides_collapse_to_none(self):
        spec = RunSpec(
            organization="cli", interleaving="cli", page_policy="closed"
        )
        assert spec == RunSpec(organization="cli")
        assert spec.canonical_key() == RunSpec(organization="cli").canonical_key()

    def test_enum_spellings_become_registry_names(self):
        spec = RunSpec(
            interleaving=Interleaving.SWIZZLE,
            page_policy=PagePolicy.HYBRID,
        )
        assert spec.interleaving == "swizzle"
        assert spec.page_policy == "hybrid"

    def test_overrides_reaching_another_named_org_collapse(self):
        spec = RunSpec(
            organization="cli", interleaving="pi", page_policy="open"
        )
        assert spec.organization == "pi"
        assert spec.interleaving is None and spec.page_policy is None
        assert spec.canonical_key() == RunSpec(organization="pi").canonical_key()

    def test_custom_config_decomposes_to_name_plus_overrides(self):
        config = dataclasses.replace(
            MemorySystemConfig.cli(), page_policy=PagePolicy.TIMEOUT
        )
        spec = RunSpec(organization=config)
        assert spec.organization == "cli"
        assert spec.interleaving is None
        assert spec.page_policy == "timeout"

    def test_unknown_names_raise_with_the_registry_listed(self):
        with pytest.raises(ConfigurationError, match="swizzle"):
            RunSpec(interleaving="zorp")
        with pytest.raises(ConfigurationError, match="timeout"):
            RunSpec(page_policy="zorp")


class TestSerialization:
    def test_none_overrides_keep_historical_canonical_keys(self):
        data = RunSpec().to_dict()
        assert "interleaving" not in data
        assert "page_policy" not in data

    def test_round_trip(self):
        spec = RunSpec(
            kernel="copy",
            organization="pi",
            length=128,
            fifo_depth=32,
            interleaving="swizzle",
            page_policy="timeout",
        )
        rebuilt = RunSpec.from_dict(spec.to_dict())
        assert rebuilt == spec
        assert rebuilt.canonical_key() == spec.canonical_key()

    def test_describe_mentions_the_overrides(self):
        spec = RunSpec(interleaving="swizzle", page_policy="hybrid")
        assert "interleaving=swizzle" in spec.describe()
        assert "page_policy=hybrid" in spec.describe()


class TestSimulateOverrides:
    def test_override_matches_the_equivalent_custom_config(self):
        via_override = simulate(
            RunSpec(
                kernel="daxpy",
                organization="cli",
                length=64,
                fifo_depth=16,
                page_policy="timeout",
            )
        )
        config = dataclasses.replace(
            MemorySystemConfig.cli(), page_policy=PagePolicy.TIMEOUT
        )
        direct = simulate(RunSpec(
            "daxpy", config, length=64, fifo_depth=16
        ))
        assert via_override == direct

    def test_apply_policy_overrides_replaces_only_what_is_given(self):
        base = MemorySystemConfig.cli()
        assert apply_policy_overrides(base) is base
        swapped = apply_policy_overrides(base, page_policy="open")
        assert swapped.page_policy is PagePolicy.OPEN
        assert swapped.interleaving is Interleaving.CACHELINE

    def test_run_spec_accepts_override_kwargs(self):
        result = simulate(RunSpec(
            "copy",
            "pi",
            length=64,
            fifo_depth=16,
            interleaving="swizzle",
            page_policy="hybrid",
        ))
        assert result.cycles > 0
