"""Tests for indexed (gather/scatter) streams."""

from __future__ import annotations

import random

import pytest

from repro.errors import StreamError
from repro.core.gather import (
    IndexedStreamDescriptor,
    build_gather_system,
    simulate_gather,
)
from repro.cpu.streams import Direction, StreamDescriptor
from repro.sim.engine import run_smc


class TestIndexedDescriptor:
    def test_addresses_follow_indices(self):
        stream = IndexedStreamDescriptor(
            "g", base=64, indices=(5, 0, 9), direction=Direction.READ
        )
        assert stream.length == 3
        assert stream.element_address(0) == 64 + 40
        assert stream.element_address(1) == 64
        assert stream.element_address(2) == 64 + 72

    def test_stride_reports_indexed(self):
        stream = IndexedStreamDescriptor(
            "g", base=0, indices=(1,), direction=Direction.READ
        )
        assert stream.stride == 0
        assert stream.is_read

    def test_footprint(self):
        stream = IndexedStreamDescriptor(
            "g", base=0, indices=(2, 7), direction=Direction.READ
        )
        assert stream.footprint_bytes == 64

    def test_validation(self):
        with pytest.raises(StreamError, match="aligned"):
            IndexedStreamDescriptor("g", 4, (0,), Direction.READ)
        with pytest.raises(StreamError, match="empty"):
            IndexedStreamDescriptor("g", 0, (), Direction.READ)
        with pytest.raises(StreamError, match="negative"):
            IndexedStreamDescriptor("g", 0, (-1,), Direction.READ)
        stream = IndexedStreamDescriptor("g", 0, (0, 1), Direction.READ)
        with pytest.raises(StreamError, match="outside"):
            stream.element_address(2)


class TestBuildGatherSystem:
    def test_mixed_streams(self, cli_config):
        gather = IndexedStreamDescriptor(
            "g", 0, tuple(range(16)), Direction.READ
        )
        dense = StreamDescriptor(
            "y", base=65536, stride=1, length=16, direction=Direction.WRITE
        )
        system = build_gather_system([gather, dense], cli_config, fifo_depth=8)
        assert len(system.sbu) == 2
        result = run_smc(system)
        assert result.useful_bytes == 2 * 16 * 8

    def test_length_mismatch_rejected(self, cli_config):
        a = IndexedStreamDescriptor("a", 0, (0, 1), Direction.READ)
        b = IndexedStreamDescriptor("b", 65536, (0,), Direction.READ)
        with pytest.raises(StreamError, match="equal length"):
            build_gather_system([a, b], cli_config, fifo_depth=8)

    def test_empty_rejected(self, cli_config):
        with pytest.raises(StreamError, match="at least one"):
            build_gather_system([], cli_config, fifo_depth=8)


class TestGatherBehavior:
    def test_dense_gather_matches_copy_shape(self, cli_config):
        result = simulate_gather(
            range(256), cli_config, fifo_depth=64, record_trace=True
        )
        assert result.percent_of_peak > 85

    def test_random_gather_collapses_bandwidth(self, cli_config):
        rng = random.Random(3)
        sparse = rng.sample(range(8 * 1024), 512)
        dense = simulate_gather(range(512), cli_config, fifo_depth=64)
        scattered = simulate_gather(sparse, cli_config, fifo_depth=64)
        assert scattered.percent_of_peak < dense.percent_of_peak / 2

    def test_sorting_indices_recovers_page_locality_on_pi(self, pi_config):
        rng = random.Random(5)
        indices = rng.sample(range(4 * 1024), 512)
        unsorted_run = simulate_gather(indices, pi_config, fifo_depth=64)
        sorted_run = simulate_gather(sorted(indices), pi_config, fifo_depth=64)
        assert sorted_run.percent_of_peak > unsorted_run.percent_of_peak
        assert sorted_run.activations < unsorted_run.activations

    def test_gather_traces_audit_clean(self, pi_config):
        rng = random.Random(9)
        indices = rng.sample(range(2048), 128)
        result = simulate_gather(
            indices, pi_config, fifo_depth=32, record_trace=True
        )
        assert result.cycles > 0  # audit ran inside simulate_gather

    def test_repeated_indices_allowed(self, cli_config):
        result = simulate_gather(
            [0, 0, 1, 1, 2, 2, 3, 3], cli_config, fifo_depth=8
        )
        assert result.useful_bytes == 2 * 8 * 8
