"""Tests for the cache model and the cache-realistic baseline."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.cache.controller import CachedNaturalOrderController
from repro.cache.model import CacheConfig, CacheModel
from repro.cpu.kernels import COPY, DAXPY, VAXPY
from repro.naturalorder.controller import NaturalOrderController
from repro.rdram.audit import audit_trace
from repro.sim.runner import RunSpec, simulate


class TestCacheConfig:
    def test_defaults(self):
        config = CacheConfig()
        assert config.num_sets == 512

    def test_associativity_changes_sets(self):
        assert CacheConfig(associativity=4).num_sets == 128

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=0)
        with pytest.raises(ConfigurationError):
            CacheConfig(size_bytes=1000, line_bytes=32)


class TestCacheModel:
    def test_miss_then_hit(self):
        cache = CacheModel()
        first = cache.access(0, is_write=False)
        second = cache.access(8, is_write=False)  # same 32-byte line
        assert not first.hit and second.hit
        assert first.fill_line == 0
        assert cache.hits == 1 and cache.misses == 1

    def test_clean_eviction_produces_no_writeback(self):
        cache = CacheModel(CacheConfig(size_bytes=64, associativity=1, line_bytes=32))
        cache.access(0, is_write=False)
        outcome = cache.access(64, is_write=False)  # maps to set 0
        assert outcome.writeback_line is None
        assert cache.writebacks == 0

    def test_dirty_eviction_writes_back(self):
        cache = CacheModel(CacheConfig(size_bytes=64, associativity=1, line_bytes=32))
        cache.access(0, is_write=True)
        outcome = cache.access(64, is_write=False)
        assert outcome.writeback_line == 0
        assert cache.writebacks == 1

    def test_lru_within_set(self):
        cache = CacheModel(CacheConfig(size_bytes=128, associativity=2, line_bytes=32))
        cache.access(0, is_write=False)     # set 0, line 0
        cache.access(64, is_write=False)    # set 0, line 2
        cache.access(0, is_write=False)     # touch line 0 (MRU)
        outcome = cache.access(128, is_write=False)  # evicts LRU: line 2
        assert not outcome.hit
        assert cache.access(0, is_write=False).hit
        assert not cache.access(64, is_write=False).hit

    def test_write_hit_marks_dirty(self):
        cache = CacheModel(CacheConfig(size_bytes=64, associativity=1, line_bytes=32))
        cache.access(0, is_write=False)
        cache.access(8, is_write=True)
        outcome = cache.access(64, is_write=False)
        assert outcome.writeback_line == 0

    def test_flush_dirty_lines(self):
        cache = CacheModel()
        cache.access(0, is_write=True)
        cache.access(32, is_write=False)
        flushed = cache.flush_dirty_lines()
        assert flushed == [0]
        assert cache.flush_dirty_lines() == []

    def test_miss_rate(self):
        cache = CacheModel()
        assert cache.miss_rate == 0.0
        cache.access(0, is_write=False)
        cache.access(0, is_write=False)
        assert cache.miss_rate == pytest.approx(0.5)


class TestCachedController:
    def test_line_size_must_match(self, cli_config):
        with pytest.raises(ConfigurationError, match="line size"):
            CachedNaturalOrderController(
                cli_config, CacheConfig(line_bytes=64)
            )

    def test_trace_audits_clean(self, pi_config):
        controller = CachedNaturalOrderController(
            pi_config, record_trace=True
        )
        controller.run(DAXPY, length=256)
        audit_trace(controller.device.trace, pi_config.timing)

    def test_copy_pays_write_allocate_penalty(self, cli_config):
        """A store-missing copy fetches the destination lines too, so
        the realistic baseline moves ~1.5x the idealized traffic."""
        ideal = NaturalOrderController(cli_config).run(COPY, length=1024)
        cached = CachedNaturalOrderController(cli_config).run(COPY, length=1024)
        assert cached.transferred_bytes == pytest.approx(
            1.5 * ideal.transferred_bytes
        )
        assert cached.percent_of_peak < ideal.percent_of_peak

    def test_rmw_kernels_hit_on_their_own_fill(self, cli_config):
        """daxpy's store hits the line its own load just fetched."""
        controller = CachedNaturalOrderController(cli_config)
        controller.run(DAXPY, length=1024)
        # Accesses: 3 per element; misses: one per line of x and y.
        assert controller.cache.misses == 2 * 1024 // 4
        assert controller.cache.miss_rate == pytest.approx(512 / 3072)

    def test_flush_accounts_for_trailing_writebacks(self, cli_config):
        with_flush = CachedNaturalOrderController(cli_config).run(
            COPY, length=512, flush_at_end=True
        )
        without = CachedNaturalOrderController(cli_config).run(
            COPY, length=512, flush_at_end=False
        )
        assert with_flush.transferred_bytes > without.transferred_bytes

    def test_strided_conflicts_hurt_direct_mapped(self, cli_config):
        """Section 6's prediction: strided vectors leave a larger
        footprint and generate many cache conflicts."""
        direct = CachedNaturalOrderController(
            cli_config, CacheConfig(associativity=1)
        )
        direct.run(VAXPY, length=1024, stride=4)
        unit = CachedNaturalOrderController(
            cli_config, CacheConfig(associativity=1)
        )
        unit.run(VAXPY, length=1024, stride=1)
        assert direct.cache.miss_rate > unit.cache.miss_rate

    def test_smc_advantage_grows_with_realism(self, cli_config):
        """The paper's closing claim, as a regression test."""
        smc = simulate(RunSpec("copy", cli_config, length=1024, fifo_depth=128))
        ideal = NaturalOrderController(cli_config).run(COPY, length=1024)
        cached = CachedNaturalOrderController(cli_config).run(COPY, length=1024)
        idealized_ratio = smc.percent_of_peak / ideal.percent_of_peak
        realistic_ratio = smc.percent_of_peak / cached.percent_of_peak
        assert realistic_ratio > idealized_ratio
