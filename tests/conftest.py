"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.memsys.config import MemorySystemConfig
from repro.rdram.device import RdramDevice
from repro.rdram.timing import RdramTiming


@pytest.fixture
def timing() -> RdramTiming:
    """The default -50 -800 part timing."""
    return RdramTiming()


@pytest.fixture
def device(timing: RdramTiming) -> RdramDevice:
    """A fresh device with trace recording on."""
    return RdramDevice(timing=timing, record_trace=True)


@pytest.fixture
def cli_config() -> MemorySystemConfig:
    """The paper's CLI organization."""
    return MemorySystemConfig.cli()


@pytest.fixture
def pi_config() -> MemorySystemConfig:
    """The paper's PI organization."""
    return MemorySystemConfig.pi()
