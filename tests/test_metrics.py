"""Tests for trace-derived metrics."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.core.smc import build_smc_system
from repro.cpu.kernels import COPY, DAXPY, VAXPY
from repro.memsys.config import MemorySystemConfig
from repro.rdram.device import RdramDevice
from repro.rdram.packets import BusDirection
from repro.sim.engine import run_smc
from repro.sim.metrics import bank_imbalance, measure_trace


def run_traced(kernel, org="cli", length=256, depth=32, alignment="staggered"):
    from repro.cpu.streams import Alignment

    config = getattr(MemorySystemConfig, org)()
    system = build_smc_system(
        kernel, config, length=length, fifo_depth=depth,
        alignment=Alignment(alignment), record_trace=True,
    )
    result = run_smc(system)
    return system, result


class TestMeasureTrace:
    def test_agrees_with_simulator_bandwidth(self):
        system, result = run_traced(DAXPY)
        metrics = measure_trace(system.device.trace)
        # Same packets, slightly different end definition; within 3%.
        assert metrics.percent_of_peak == pytest.approx(
            result.percent_of_peak, rel=0.03
        )
        assert metrics.data_packets == result.packets_issued

    def test_bus_utilizations_bounded(self):
        system, __ = run_traced(VAXPY, org="pi")
        metrics = measure_trace(system.device.trace)
        for value in (
            metrics.data_bus_utilization,
            metrics.row_bus_utilization,
            metrics.col_bus_utilization,
        ):
            assert 0.0 <= value <= 1.0
        # Command buses never exceed the data bus for dense streams.
        assert metrics.col_bus_utilization <= metrics.data_bus_utilization + 1e-9

    def test_turnarounds_counted(self):
        system, __ = run_traced(COPY)
        metrics = measure_trace(system.device.trace)
        assert metrics.turnarounds > 0
        assert metrics.turnaround_cycles >= metrics.turnarounds * 0

    def test_per_bank_stats(self):
        system, result = run_traced(COPY, org="cli")
        metrics = measure_trace(system.device.trace)
        assert sum(
            stats.column_accesses for stats in metrics.bank_stats.values()
        ) == result.packets_issued
        assert sum(
            stats.activations for stats in metrics.bank_stats.values()
        ) == result.activations

    def test_timeline_shows_steady_state(self):
        system, __ = run_traced(DAXPY, length=1024, depth=64)
        metrics = measure_trace(system.device.trace, window=128)
        assert len(metrics.utilization_timeline) > 4
        steady = [u for __, u in metrics.utilization_timeline[1:-1]]
        assert max(steady) > 0.8

    def test_timeline_tail_bucket_normalized_by_covered_extent(self):
        # Back-to-back packets ending 8 cycles into the last window: a
        # fully busy tail must read 1.0, not 8/window.
        device = RdramDevice(record_trace=True)
        device.issue_act(0, 0, 0)
        for __ in range(18):
            device.issue_col(0, 0, 0, 0, BusDirection.WRITE)
        metrics = measure_trace(device.trace, window=64)
        assert metrics.utilization_timeline[-1][1] == pytest.approx(1.0)
        for __, utilization in metrics.utilization_timeline:
            assert 0.0 < utilization <= 1.0

    def test_empty_trace(self):
        metrics = measure_trace([])
        assert metrics.cycles == 0
        assert metrics.percent_of_peak == 0.0

    def test_bad_window(self):
        with pytest.raises(ConfigurationError):
            measure_trace([], window=0)

    def test_col_carried_precharges_not_charged_to_row_bus(self):
        device = RdramDevice(record_trace=True)
        device.issue_act(0, 0, 0)
        device.issue_col(0, 0, 0, 0, BusDirection.READ, precharge=True)
        metrics = measure_trace(device.trace)
        # Only the ACT occupies the row bus.
        assert metrics.row_bus_utilization == pytest.approx(
            4 / metrics.cycles
        )
        assert metrics.bank_stats[0].precharges == 1


class TestBankImbalance:
    def test_staggered_streams_balance_banks(self):
        system, __ = run_traced(DAXPY, org="cli", length=1024)
        metrics = measure_trace(system.device.trace)
        assert bank_imbalance(metrics) < 1.1

    def test_strided_streams_concentrate_banks(self):
        from repro.cpu.streams import Alignment

        config = MemorySystemConfig.cli()
        system = build_smc_system(
            VAXPY, config, length=256, fifo_depth=32, stride=16,
            record_trace=True,
        )
        run_smc(system)
        metrics = measure_trace(system.device.trace)
        # Stride 16 on CLI concentrates each stream on two banks;
        # counting untouched banks, the imbalance is pronounced.
        assert bank_imbalance(metrics, num_banks=8) > 1.2
        assert len(metrics.bank_stats) < 8

    def test_empty(self):
        assert bank_imbalance(measure_trace([])) == 1.0
