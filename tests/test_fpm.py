"""Tests for the fast-page-mode substrate (Section 3 heritage)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.cpu.kernels import COPY, DAXPY, PAPER_KERNELS, get_kernel
from repro.cpu.streams import Alignment
from repro.fpm.device import FpmGeometry, FpmMemorySystem
from repro.fpm.smc import run_fpm


class TestDevice:
    def test_attainable_matches_figure1_peak(self):
        memory = FpmMemorySystem()
        # 8 bytes per 30 ns page cycle = the Figure 1 267 MB/s entry.
        assert memory.attainable_bandwidth_bytes_per_sec == pytest.approx(
            8 / 30e-9
        )

    def test_hit_and_miss_costs(self):
        memory = FpmMemorySystem()
        t0 = memory.access(0, 0.0)
        assert t0 == pytest.approx(95.0)   # cold miss pays t_RC
        t1 = memory.access(8, t0)
        assert t1 - t0 == pytest.approx(30.0)  # same page: t_PC

    def test_banks_hold_independent_rows(self):
        memory = FpmMemorySystem()
        now = memory.access(0, 0.0)        # bank 0, row 0
        now = memory.access(1024, now)     # bank 1, row 0
        now = memory.access(8, now)        # bank 0 again: still open
        assert memory.page_hits == 1
        assert memory.page_misses == 2

    def test_page_interleave_mapping(self):
        memory = FpmMemorySystem()
        assert memory.locate(0) == (0, 0)
        assert memory.locate(1024) == (1, 0)
        assert memory.locate(2048) == (0, 1)

    def test_reset(self):
        memory = FpmMemorySystem()
        memory.access(0, 0.0)
        memory.reset()
        assert memory.accesses == 0
        assert memory.access(0, 0.0) == pytest.approx(95.0)

    def test_geometry_validation(self):
        with pytest.raises(ConfigurationError):
            FpmGeometry(num_banks=0)


class TestSection3Claims:
    @pytest.mark.parametrize("kernel_name", list(PAPER_KERNELS))
    def test_smc_exceeds_90_percent_attainable(self, kernel_name):
        """'exploiting over 90% of the attainable bandwidth for
        long-vector computations.'"""
        result = run_fpm(
            get_kernel(kernel_name), "smc", length=1024, fifo_depth=64
        )
        assert result.percent_of_attainable > 90

    def test_natural_order_page_thrashes_when_aligned(self):
        natural = run_fpm(
            COPY, "natural-order", length=1024, alignment=Alignment.ALIGNED
        )
        # Alternating between two vectors in one bank: zero hits.
        assert natural.page_hit_rate == 0.0

    def test_staggered_natural_order_recovers_hits(self):
        aligned = run_fpm(
            COPY, "natural-order", length=1024, alignment=Alignment.ALIGNED
        )
        staggered = run_fpm(
            COPY, "natural-order", length=1024, alignment=Alignment.STAGGERED
        )
        assert staggered.page_hit_rate > 0.9
        assert staggered.total_ns < aligned.total_ns

    def test_smc_speedup_approaches_trc_over_tpc(self):
        natural = run_fpm(COPY, "natural-order", length=4096)
        smc = run_fpm(COPY, "smc", length=4096, fifo_depth=128)
        speedup = natural.total_ns / smc.total_ns
        assert 2.0 < speedup <= 95 / 30 + 0.01

    def test_deeper_fifos_monotone(self):
        values = [
            run_fpm(DAXPY, "smc", length=1024, fifo_depth=depth)
            .percent_of_attainable
            for depth in (8, 16, 32, 64, 128)
        ]
        assert values == sorted(values)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError, match="scheme"):
            run_fpm(COPY, "oracle")

    def test_accesses_conserved(self):
        result = run_fpm(DAXPY, "smc", length=256, fifo_depth=16)
        assert result.accesses == DAXPY.num_streams * 256
