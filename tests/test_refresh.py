"""Tests for the background refresh engine."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.rdram.audit import audit_trace
from repro.rdram.refresh import DEFAULT_INTERVAL_CYCLES, RefreshEngine
from repro.sim.runner import RunSpec, simulate


class TestEngineMechanics:
    def test_interval_meets_retention_window(self):
        # 8 banks x 1024 rows x interval must fit in 32 ms at 2.5 ns.
        total = 8 * 1024 * DEFAULT_INTERVAL_CYCLES * 2.5e-9
        assert total <= 32e-3

    def test_no_refresh_before_interval(self, device):
        engine = RefreshEngine(device, interval=100)
        assert not engine.tick(99)
        assert engine.refreshes_issued == 0

    def test_refresh_issues_act_prer_pair(self, device):
        engine = RefreshEngine(device, interval=50)
        assert engine.tick(50)
        assert engine.refreshes_issued == 1
        assert not device.bank(0).is_open
        audit_trace(device.trace)

    def test_cursor_walks_banks_then_rows(self, device):
        engine = RefreshEngine(device, interval=10, force_after=0)
        cycle = 0
        while engine.refreshes_issued < 9:
            engine.tick(cycle)
            cycle += 1
        acts = [p for p in device.trace if getattr(p, "command", None) is not None
                and p.command.value == "ACT"]
        assert [a.bank for a in acts] == [0, 1, 2, 3, 4, 5, 6, 7, 0]
        assert acts[-1].row == 1  # second lap refreshes the next row

    def test_busy_bank_defers(self, device):
        device.issue_act(0, 3, 0)
        engine = RefreshEngine(device, interval=10, force_after=2)
        assert not engine.tick(10)
        assert engine.deferrals == 1
        assert engine.next_action_cycle > 10

    def test_deadline_forces_precharge(self, device):
        device.issue_act(0, 3, 0)
        engine = RefreshEngine(device, interval=10, force_after=1)
        assert not engine.tick(10)   # first deferral
        assert engine.tick(engine.next_action_cycle + 30)
        assert engine.forced_precharges == 1
        assert engine.refreshes_issued == 1
        audit_trace(device.trace)

    def test_invalid_interval(self, device):
        with pytest.raises(ConfigurationError):
            RefreshEngine(device, interval=0)


class TestRefreshInSimulation:
    @pytest.mark.parametrize("org", ["cli", "pi"])
    def test_refreshed_runs_stay_legal_and_close(self, org):
        base = simulate(RunSpec("daxpy", org, length=1024, fifo_depth=64))
        refreshed = simulate(RunSpec(
            "daxpy", org, length=1024, fifo_depth=64, refresh=True, audit=True
        ))
        assert refreshed.refreshes > 0
        # The paper's ignore-refresh assumption: cost under 4 points.
        assert refreshed.percent_of_peak > base.percent_of_peak - 4

    def test_refresh_count_scales_with_runtime(self):
        short = simulate(RunSpec(
            "copy", "cli", length=256, fifo_depth=32, refresh=True
        ))
        long = simulate(RunSpec(
            "copy", "cli", length=2048, fifo_depth=32, refresh=True
        ))
        assert long.refreshes > short.refreshes

    def test_no_refreshes_by_default(self):
        result = simulate(RunSpec("copy", "cli", length=256, fifo_depth=32))
        assert result.refreshes == 0
