"""Tests for the repro-simulate command-line interface."""

from __future__ import annotations


from repro.sim.cli import main


class TestBasicRuns:
    def test_default_smc_run(self, capsys):
        assert main(["copy", "--length", "128", "--fifo-depth", "16"]) == 0
        out = capsys.readouterr().out
        assert "kernel       : copy" in out
        assert "% of peak" in out

    def test_baseline_run(self, capsys):
        assert main(
            ["daxpy", "--baseline", "natural-order", "--length", "128"]
        ) == 0
        out = capsys.readouterr().out
        assert "controller   : natural-order" in out

    def test_pi_org(self, capsys):
        assert main(["vaxpy", "--org", "pi", "--length", "128"]) == 0
        assert "PI / open-page" in capsys.readouterr().out

    def test_strided_reports_attainable(self, capsys):
        assert main(["copy", "--stride", "4", "--length", "128"]) == 0
        assert "attainable" in capsys.readouterr().out


class TestOptions:
    def test_bounds(self, capsys):
        assert main(["daxpy", "--length", "128", "--bounds"]) == 0
        out = capsys.readouterr().out
        assert "natural-order" in out and "SMC combined" in out

    def test_metrics_and_audit(self, capsys):
        assert main(
            ["copy", "--length", "128", "--metrics", "--audit"]
        ) == 0
        out = capsys.readouterr().out
        assert "audit        : OK" in out
        assert "bus load" in out

    def test_gantt(self, capsys):
        assert main(["copy", "--length", "64", "--gantt", "80"]) == 0
        out = capsys.readouterr().out
        assert "cycle 0" in out
        assert "data " in out

    def test_policy_selection(self, capsys):
        assert main(
            ["daxpy", "--length", "128", "--policy", "bank-aware"]
        ) == 0
        assert "bank-aware" in capsys.readouterr().out

    def test_refresh(self, capsys):
        assert main(["copy", "--length", "1024", "--refresh"]) == 0
        out = capsys.readouterr().out
        refreshes = int(out.split("refreshes")[0].rsplit(",", 1)[1])
        assert refreshes > 0

    def test_compile_mode(self, capsys):
        assert main(
            ["y[i] = a*x[i] + y[i]", "--compile", "--length", "128"]
        ) == 0
        assert "kernel       : loop" in capsys.readouterr().out


class TestErrors:
    def test_unknown_kernel_reports_error(self, capsys):
        assert main(["fft", "--length", "64"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_loop_source(self, capsys):
        assert main(["y[i] = x[i*i]", "--compile"]) == 1
        assert "error:" in capsys.readouterr().err
