"""Tests for the per-bank sense-amp state machine."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.rdram.bank import NEVER, Bank


@pytest.fixture
def bank(timing):
    return Bank(index=0, timing=timing)


class TestActivate:
    def test_fresh_bank_activates_immediately(self, bank):
        assert bank.earliest_act(5) == 5

    def test_act_opens_row(self, bank):
        bank.apply_act(0, 7)
        assert bank.is_open
        assert bank.open_row == 7

    def test_act_while_open_rejected(self, bank):
        bank.apply_act(0, 7)
        with pytest.raises(ProtocolError, match="open"):
            bank.earliest_act(100)

    def test_act_respects_t_rp_after_precharge(self, bank, timing):
        bank.apply_act(0, 1)
        # Precharge late enough that t_RP (not t_RC) is the binding
        # constraint on the next activate.
        bank.apply_prer(40)
        assert bank.earliest_act(0) == 40 + timing.t_rp

    def test_act_respects_t_rc(self, bank, timing):
        bank.apply_act(0, 1)
        bank.apply_prer(timing.t_ras)
        # t_RC (34) dominates t_RAS + t_RP (30) here.
        assert bank.earliest_act(0) == timing.t_rc

    def test_act_before_legal_cycle_rejected(self, bank, timing):
        bank.apply_act(0, 1)
        bank.apply_prer(timing.t_ras)
        with pytest.raises(ProtocolError, match="before legal"):
            bank.apply_act(timing.t_rc - 1, 2)


class TestColumn:
    def test_col_requires_matching_open_row(self, bank):
        bank.apply_act(0, 3)
        with pytest.raises(ProtocolError, match="open row"):
            bank.earliest_col(50, 4)

    def test_col_to_closed_bank_rejected(self, bank):
        with pytest.raises(ProtocolError):
            bank.earliest_col(0, 0)

    def test_col_respects_t_rcd(self, bank, timing):
        bank.apply_act(10, 3)
        assert bank.earliest_col(0, 3) == 10 + timing.t_rcd

    def test_col_after_t_rcd_is_immediate(self, bank, timing):
        bank.apply_act(0, 3)
        assert bank.earliest_col(40, 3) == 40

    def test_col_before_legal_rejected(self, bank, timing):
        bank.apply_act(0, 3)
        with pytest.raises(ProtocolError, match="before legal"):
            bank.apply_col(timing.t_rcd - 1, 3)


class TestPrecharge:
    def test_prer_requires_open_bank(self, bank):
        with pytest.raises(ProtocolError, match="closed"):
            bank.earliest_prer(0)

    def test_prer_respects_t_ras(self, bank, timing):
        bank.apply_act(0, 1)
        assert bank.earliest_prer(0) == timing.t_ras

    def test_prer_respects_t_cpol(self, bank, timing):
        bank.apply_act(0, 1)
        bank.apply_col(30, 1)  # COL occupies cycles 30-33
        # PRER may overlap at most t_cpol = 1 cycle with the COL packet.
        assert bank.earliest_prer(0) == 34 - timing.t_cpol == 33

    def test_prer_closes_bank(self, bank, timing):
        bank.apply_act(0, 1)
        bank.apply_prer(timing.t_ras)
        assert not bank.is_open

    def test_prer_before_t_ras_rejected(self, bank, timing):
        bank.apply_act(0, 1)
        with pytest.raises(ProtocolError, match="before legal"):
            bank.apply_prer(timing.t_ras - 1)


class TestReset:
    def test_reset_clears_all_state(self, bank, timing):
        bank.apply_act(0, 1)
        bank.apply_col(timing.t_rcd, 1)
        bank.apply_prer(timing.t_ras)
        bank.reset()
        assert not bank.is_open
        assert bank.earliest_act(0) == 0

    def test_never_sentinel_unbinds_constraints(self, bank):
        assert NEVER < -(10**8)
        assert bank.earliest_act(0) == 0
