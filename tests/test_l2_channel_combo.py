"""Cross-cutting combinations of the extension subsystems.

Each extension was tested in isolation; these tests compose them —
channels with double-bank devices, gathers on channels, L2 staging on
strided workloads, refresh on channels — to catch interface seams.
"""

from __future__ import annotations


from repro.cache.model import CacheConfig
from repro.core.gather import simulate_gather
from repro.core.l2stream import L2StreamingController
from repro.cpu.kernels import DAXPY, VAXPY
from repro.memsys.config import MemorySystemConfig
from repro.rdram.audit import audit_trace
from repro.rdram.channel import ChannelGeometry
from repro.rdram.device import RdramGeometry
from repro.sim.runner import RunSpec, simulate


class TestChannelCombinations:
    def test_channel_of_double_bank_devices(self):
        geometry = ChannelGeometry(
            num_devices=2,
            device=RdramGeometry(num_banks=16, doubled_banks=True),
        )
        config = MemorySystemConfig.cli(geometry=geometry)
        result = simulate(RunSpec(
            "daxpy", config, length=512, fifo_depth=32, audit=True
        ))
        assert result.percent_of_peak > 75

    def test_gather_on_a_channel(self):
        config = MemorySystemConfig.pi(
            geometry=ChannelGeometry(num_devices=2)
        )
        result = simulate_gather(
            range(256), config, fifo_depth=32, record_trace=True
        )
        assert result.percent_of_peak > 80

    def test_refresh_on_a_channel(self):
        config = MemorySystemConfig.cli(
            geometry=ChannelGeometry(num_devices=2)
        )
        result = simulate(RunSpec(
            "copy", config, length=1024, fifo_depth=64, refresh=True,
            audit=True,
        ))
        assert result.refreshes > 0
        assert result.percent_of_peak > 85

    def test_strided_run_on_channel(self):
        config = MemorySystemConfig.cli(
            geometry=ChannelGeometry(num_devices=4)
        )
        result = simulate(RunSpec(
            "vaxpy", config, length=512, fifo_depth=64, stride=4, audit=True
        ))
        # 32 global banks absorb the stride-4 concentration better
        # than a single device's 8.
        single = simulate(RunSpec(
            "vaxpy", "cli", length=512, fifo_depth=64, stride=4
        ))
        assert result.percent_of_attainable >= single.percent_of_attainable


class TestL2Combinations:
    def test_l2_staging_with_strided_streams(self, cli_config):
        controller = L2StreamingController(
            cli_config, prefetch_window=8, record_trace=True
        )
        result = controller.run(VAXPY, length=256, stride=4)
        audit_trace(controller.device.trace, cli_config.timing)
        assert result.percent_of_peak > 5

    def test_l2_staging_on_double_bank_core(self):
        config = MemorySystemConfig.pi(
            geometry=RdramGeometry(num_banks=16, doubled_banks=True)
        )
        controller = L2StreamingController(config, prefetch_window=8)
        result = controller.run(DAXPY, length=256)
        assert result.percent_of_peak > 30

    def test_l2_with_custom_cache_on_pi(self, pi_config):
        controller = L2StreamingController(
            pi_config,
            l2_config=CacheConfig(size_bytes=32 * 1024, associativity=8,
                                  line_bytes=32),
            prefetch_window=16,
        )
        result = controller.run(DAXPY, length=512)
        # daxpy's read- and write-streams share vector y, so a handful
        # of refetches from write-validate/prefetch interleaving are
        # inherent; an ample associative L2 keeps them to single digits.
        assert controller.refetches < 10
        assert result.percent_of_peak > 50
