"""Tests for stream descriptors and data placement."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, StreamError
from repro.cpu.kernels import DAXPY, HYDRO, VAXPY
from repro.cpu.streams import (
    Alignment,
    Direction,
    StreamDescriptor,
    place_streams,
)
from repro.memsys.address import AddressMap
from repro.memsys.config import MemorySystemConfig


class TestStreamDescriptor:
    def test_element_addresses(self):
        stream = StreamDescriptor("x", base=0, stride=1, length=4, direction=Direction.READ)
        assert [stream.element_address(i) for i in range(4)] == [0, 8, 16, 24]

    def test_strided_addresses(self):
        stream = StreamDescriptor("x", base=64, stride=3, length=3, direction=Direction.READ)
        assert [stream.element_address(i) for i in range(3)] == [64, 88, 112]

    def test_out_of_range_element(self):
        stream = StreamDescriptor("x", base=0, stride=1, length=4, direction=Direction.READ)
        with pytest.raises(StreamError, match="outside"):
            stream.element_address(4)
        with pytest.raises(StreamError):
            stream.element_address(-1)

    def test_footprint(self):
        stream = StreamDescriptor("x", base=0, stride=4, length=10, direction=Direction.READ)
        assert stream.footprint_bytes == (9 * 4 + 1) * 8

    def test_misaligned_base_rejected(self):
        with pytest.raises(StreamError, match="aligned"):
            StreamDescriptor("x", base=4, stride=1, length=4, direction=Direction.READ)

    def test_bad_stride_and_length_rejected(self):
        with pytest.raises(StreamError, match="stride"):
            StreamDescriptor("x", base=0, stride=0, length=4, direction=Direction.READ)
        with pytest.raises(StreamError, match="length"):
            StreamDescriptor("x", base=0, stride=1, length=0, direction=Direction.READ)

    def test_is_read(self):
        read = StreamDescriptor("x", base=0, stride=1, length=1, direction=Direction.READ)
        write = StreamDescriptor("y", base=0, stride=1, length=1, direction=Direction.WRITE)
        assert read.is_read and not write.is_read


class TestPlacement:
    @pytest.mark.parametrize("org", ["cli", "pi"])
    def test_aligned_bases_share_a_bank(self, org):
        config = getattr(MemorySystemConfig, org)()
        mapping = AddressMap(config)
        placed = place_streams(
            VAXPY.streams, config, length=1024, alignment=Alignment.ALIGNED
        )
        banks = {mapping.bank_of(d.base) for d in placed}
        assert banks == {0}

    @pytest.mark.parametrize("org", ["cli", "pi"])
    def test_staggered_bases_hit_distinct_banks(self, org):
        config = getattr(MemorySystemConfig, org)()
        mapping = AddressMap(config)
        placed = place_streams(
            VAXPY.streams, config, length=1024, alignment=Alignment.STAGGERED
        )
        vector_banks = {
            d.base: mapping.bank_of(d.base) for d in placed
        }
        # vaxpy has three distinct vectors (a, x, y); three banks.
        assert len(set(vector_banks.values())) == 3

    def test_staggered_banks_spread_evenly(self):
        config = MemorySystemConfig.pi()
        mapping = AddressMap(config)
        placed = place_streams(
            HYDRO.streams, config, length=1024, alignment=Alignment.STAGGERED
        )
        banks = [mapping.bank_of(d.base) for d in placed]
        # Four vectors over eight banks: 0, 2, 4, 6.
        assert banks == [0, 2, 4, 6]

    def test_rmw_streams_share_base(self):
        config = MemorySystemConfig.cli()
        placed = {d.name: d for d in place_streams(DAXPY.streams, config, length=64)}
        assert placed["y.rd"].base == placed["y.wr"].base
        assert placed["x"].base != placed["y.rd"].base

    def test_distinct_vectors_share_no_pages(self):
        config = MemorySystemConfig.pi()
        placed = place_streams(VAXPY.streams, config, length=1024)
        page = config.geometry.page_bytes
        ranges = {}
        for d in placed:
            pages = set(
                range(d.base // page, (d.base + d.footprint_bytes - 1) // page + 1)
            )
            ranges[d.base] = pages
        page_sets = list(ranges.values())
        for i, a in enumerate(page_sets):
            for b in page_sets[i + 1:]:
                assert not (a & b)

    def test_capacity_exceeded_rejected(self):
        config = MemorySystemConfig.cli()
        with pytest.raises(ConfigurationError, match="device holds"):
            place_streams(VAXPY.streams, config, length=200_000, stride=8)

    def test_strided_footprints_get_larger_regions(self):
        config = MemorySystemConfig.cli()
        unit = place_streams(DAXPY.streams, config, length=1024, stride=1)
        strided = place_streams(DAXPY.streams, config, length=1024, stride=16)
        assert strided[1].base > unit[1].base

    def test_descriptors_preserve_order_and_direction(self):
        config = MemorySystemConfig.cli()
        placed = place_streams(DAXPY.streams, config, length=8)
        assert [d.name for d in placed] == ["x", "y.rd", "y.wr"]
        assert [d.direction for d in placed] == [
            Direction.READ, Direction.READ, Direction.WRITE
        ]
