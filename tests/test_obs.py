"""Tests for the observability layer: counters, spans, attribution, export."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.core.smc import build_smc_system
from repro.cpu.kernels import get_kernel
from repro.naturalorder.controller import NaturalOrderController
from repro.obs import (
    BUCKETS,
    CounterRegistry,
    EventTracer,
    Instrumentation,
    attribute_stalls,
)
from repro.obs.cli import main as trace_main
from repro.obs.export import (
    load_trace_file,
    rebuild_instrumentation,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim.cli import main as simulate_main
from repro.sim.engine import run_smc
from repro.sim.metrics import measure_trace
from repro.sim.runner import RunSpec, resolve_config, simulate

KERNELS = ("copy", "daxpy", "vaxpy")
ORGS = ("cli", "pi")


def run_instrumented(kernel, org, length=1024, depth=64, **kwargs):
    obs = Instrumentation()
    result = simulate(
        RunSpec(kernel, org, length=length, fifo_depth=depth, **kwargs),
        obs=obs,
    )
    return obs, result


class TestPrimitives:
    def test_counters_and_gauges(self):
        registry = CounterRegistry()
        registry.incr("a")
        registry.incr("a", 2)
        registry.sample_gauge("g", 5, 1.5)
        assert registry.get("a") == 3
        assert registry.get("missing") == 0
        assert registry.counters == {"a": 3}
        assert registry.gauges == {"g": [(5, 1.5)]}

    def test_tracer_spans_and_instants(self):
        tracer = EventTracer()
        tracer.add_span("msu", "idle:fifo", 10, 20, reason="full")
        tracer.add_span("cpu", "stall:read", 0, 4)
        tracer.add_instant("refresh", "forced_precharge", 7, bank=3)
        assert tracer.tracks() == ["msu", "cpu", "refresh"]
        (span,) = tracer.spans_on("msu", "idle")
        assert span.duration == 10 and dict(span.args) == {"reason": "full"}
        assert tracer.spans_on("msu", "nope") == []

    def test_disabled_by_default(self):
        system = build_smc_system(
            get_kernel("copy"), resolve_config("cli"),
            length=128, fifo_depth=16,
        )
        run_smc(system)
        assert system.msu.obs is None
        assert system.device.obs is None


class TestStallAttribution:
    @pytest.mark.parametrize("org", ORGS)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_buckets_and_busy_sum_to_cycles(self, kernel, org):
        obs, result = run_instrumented(kernel, org)
        stalls = attribute_stalls(obs)
        assert stalls.cycles == result.cycles
        assert stalls.busy + sum(stalls.buckets.values()) == result.cycles
        assert set(stalls.buckets) == set(BUCKETS)
        assert all(value >= 0 for value in stalls.buckets.values())

    @pytest.mark.parametrize("org", ORGS)
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_turnaround_bucket_matches_trace_metrics(self, kernel, org):
        system = build_smc_system(
            get_kernel(kernel), resolve_config(org),
            length=1024, fifo_depth=64, record_trace=True,
        )
        obs = Instrumentation()
        result = run_smc(system, obs=obs)
        stalls = attribute_stalls(obs)
        metrics = measure_trace(
            system.device.trace, system.config.timing, result.cycles
        )
        assert stalls.buckets["turnaround"] == metrics.turnaround_cycles

    def test_refresh_run_attributes_refresh_cycles(self):
        obs, result = run_instrumented("daxpy", "pi", length=4096,
                                       refresh=True)
        stalls = attribute_stalls(obs)
        assert stalls.total == result.cycles
        assert obs.counters.get("refresh.issued") > 0
        assert stalls.buckets["refresh"] > 0

    @pytest.mark.parametrize("org", ORGS)
    def test_natural_order_controller_closes(self, org):
        obs = Instrumentation()
        controller = NaturalOrderController(resolve_config(org))
        result = controller.run(get_kernel("daxpy"), 1024, obs=obs)
        stalls = attribute_stalls(obs)
        assert stalls.total == result.cycles
        assert obs.counters.get("controller.transactions") > 0

    def test_attribution_needs_completed_run(self):
        with pytest.raises(ObservabilityError):
            attribute_stalls(Instrumentation())

    def test_stall_table_renders(self):
        obs, __ = run_instrumented("copy", "cli", length=128, depth=16)
        table = attribute_stalls(obs).table()
        assert "stall attribution" in table
        for bucket in BUCKETS:
            assert bucket in table


class TestDenseSkipIdentity:
    @pytest.mark.parametrize("org", ORGS)
    def test_identical_event_streams(self, org):
        streams = []
        for dense in (False, True):
            system = build_smc_system(
                get_kernel("daxpy"), resolve_config(org),
                length=256, fifo_depth=32,
            )
            obs = Instrumentation()
            run_smc(system, dense=dense, obs=obs)
            streams.append(obs)
        skip, dense = streams
        assert skip.tracer == dense.tracer
        assert skip.counters == dense.counters
        assert skip.gaps == dense.gaps
        assert skip == dense


class TestExportRoundTrip:
    @pytest.mark.parametrize("fmt", ("chrome", "jsonl"))
    def test_events_round_trip(self, fmt, tmp_path):
        obs, result = run_instrumented("vaxpy", "pi", length=256, depth=32)
        stalls = attribute_stalls(obs)
        path = str(tmp_path / ("t.json" if fmt == "chrome" else "t.jsonl"))
        write = write_chrome_trace if fmt == "chrome" else write_jsonl
        count = write(path, obs, result={"cycles": result.cycles},
                      stalls=stalls.as_dict())
        assert count > 0
        document = load_trace_file(path)
        assert document.meta["kernel"] == "vaxpy"
        assert document.result["cycles"] == result.cycles
        assert document.stalls["buckets"]["turnaround"] == (
            stalls.buckets["turnaround"]
        )
        rebuilt = rebuild_instrumentation(document)
        assert rebuilt.counters == obs.counters
        assert rebuilt.tracer == obs.tracer
        assert rebuilt.meta == obs.meta

    def test_chrome_trace_is_valid_trace_event_json(self, tmp_path):
        obs, __ = run_instrumented("copy", "cli", length=128, depth=16)
        path = str(tmp_path / "trace.json")
        write_chrome_trace(path, obs)
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        assert isinstance(document["traceEvents"], list)
        phases = {event["ph"] for event in document["traceEvents"]}
        assert "X" in phases and "M" in phases
        for event in document["traceEvents"]:
            assert "name" in event and "ph" in event

    def test_unwritable_path_is_clean_error(self):
        obs, __ = run_instrumented("copy", "cli", length=128, depth=16)
        for write in (write_chrome_trace, write_jsonl):
            with pytest.raises(ObservabilityError):
                write("/nonexistent-dir/trace.out", obs)

    def test_load_rejects_garbage(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("")
        with pytest.raises(ObservabilityError):
            load_trace_file(str(empty))
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(ObservabilityError):
            load_trace_file(str(bad))
        with pytest.raises(ObservabilityError):
            load_trace_file(str(tmp_path / "missing.json"))


class TestSimulateCliModes:
    def test_json_mode(self, capsys):
        assert simulate_main(["daxpy", "--org", "pi", "--length", "128",
                              "--json", "--metrics"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["result"]["kernel"] == "daxpy"
        assert report["stalls"]["cycles"] == report["result"]["cycles"]
        assert report["stalls"]["busy"] + sum(
            report["stalls"]["buckets"].values()
        ) == report["result"]["cycles"]
        assert report["counters"]["device.data_packets"] > 0
        assert 0.0 <= report["metrics"]["data_bus_utilization"] <= 1.0

    def test_json_excludes_gantt(self, capsys):
        assert simulate_main(["copy", "--json", "--gantt"]) == 1
        assert "mutually exclusive" in capsys.readouterr().err

    def test_stats_mode(self, capsys):
        assert simulate_main(["copy", "--length", "128", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "stall attribution" in out
        assert "msu.decisions" in out

    def test_trace_out_then_repro_trace(self, capsys, tmp_path):
        path = str(tmp_path / "run.json")
        assert simulate_main(["daxpy", "--org", "pi", "--length", "128",
                              "--trace-out", path]) == 0
        capsys.readouterr()
        assert trace_main([path, "--stalls"]) == 0
        out = capsys.readouterr().out
        assert "stall attribution" in out
        assert "run cycles" in out

    def test_trace_out_jsonl(self, capsys, tmp_path):
        path = str(tmp_path / "run.jsonl")
        assert simulate_main(["copy", "--length", "128",
                              "--trace-out", path]) == 0
        capsys.readouterr()
        assert trace_main([path, "--counters"]) == 0
        assert "device.data_packets" in capsys.readouterr().out


class TestTraceCli:
    def test_summary_and_spans(self, capsys, tmp_path):
        path = str(tmp_path / "run.json")
        simulate_main(["vaxpy", "--length", "128", "--trace-out", path])
        capsys.readouterr()
        assert trace_main([path]) == 0
        out = capsys.readouterr().out
        assert "kernel" in out and "events" in out
        assert trace_main([path, "--spans", "5"]) == 0
        assert "msu" in capsys.readouterr().out

    def test_missing_file_is_clean_error(self, capsys, tmp_path):
        assert trace_main([str(tmp_path / "none.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_stalls_flag_without_embedded_stalls(self, capsys, tmp_path):
        obs, __ = run_instrumented("copy", "cli", length=128, depth=16)
        path = str(tmp_path / "bare.json")
        write_chrome_trace(path, obs)
        assert trace_main([path, "--stalls"]) == 1
        assert "error:" in capsys.readouterr().err


class TestRequireTrace:
    def test_metrics_without_trace_is_repro_error(self):
        from repro.sim.cli import _require_trace

        with pytest.raises(ObservabilityError) as excinfo:
            _require_trace(None, "--metrics")
        assert "--metrics" in str(excinfo.value)
        assert _require_trace([], "--metrics") == []
