"""Tests for explicit write-buffer retire and the random-access driver."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.memsys.config import MemorySystemConfig
from repro.naturalorder.random_driver import RandomAccessDriver
from repro.rdram.audit import audit_trace
from repro.rdram.channel import ChannelGeometry
from repro.rdram.device import RdramDevice
from repro.rdram.packets import BusDirection, ColCommand, ColPacket


class TestExplicitRetire:
    def test_ret_packet_emitted_between_wr_and_rd(self, timing):
        device = RdramDevice(explicit_retire=True)
        device.issue_act(0, 0, 0)
        write = device.issue_col(0, 0, 0, 0, BusDirection.WRITE)
        read = device.issue_col(0, 0, 1, write.col.end, BusDirection.READ)
        rets = [
            p for p in device.trace
            if isinstance(p, ColPacket) and p.command is ColCommand.RET
        ]
        assert len(rets) == 1
        assert write.col.end <= rets[0].start <= read.col.start - timing.t_pack
        audit_trace(device.trace, timing)

    def test_data_timing_matches_folded_model(self, timing):
        """Explicit retires must not change data timing: t_RW already
        folds the retire slot in."""
        explicit = RdramDevice(explicit_retire=True)
        folded = RdramDevice(explicit_retire=False)
        for device in (explicit, folded):
            device.issue_act(0, 0, 0)
            device.issue_col(0, 0, 0, 0, BusDirection.WRITE)
        e = explicit.issue_col(0, 0, 1, 0, BusDirection.READ)
        f = folded.issue_col(0, 0, 1, 0, BusDirection.READ)
        assert e.data.start == f.data.start

    def test_no_ret_between_consecutive_writes(self):
        device = RdramDevice(explicit_retire=True)
        device.issue_act(0, 0, 0)
        device.issue_col(0, 0, 0, 0, BusDirection.WRITE)
        device.issue_col(0, 0, 1, 0, BusDirection.WRITE)
        rets = [
            p for p in device.trace
            if isinstance(p, ColPacket) and p.command is ColCommand.RET
        ]
        assert rets == []

    def test_only_first_read_after_writes_pays(self):
        device = RdramDevice(explicit_retire=True)
        device.issue_act(0, 0, 0)
        device.issue_col(0, 0, 0, 0, BusDirection.WRITE)
        device.issue_col(0, 0, 1, 0, BusDirection.READ)
        device.issue_col(0, 0, 2, 0, BusDirection.READ)
        rets = [
            p for p in device.trace
            if isinstance(p, ColPacket) and p.command is ColCommand.RET
        ]
        assert len(rets) == 1


class TestRandomAccessDriver:
    def test_deterministic_per_seed(self, cli_config):
        a = RandomAccessDriver(cli_config).run(200, seed=3)
        b = RandomAccessDriver(cli_config).run(200, seed=3)
        assert a == b
        c = RandomAccessDriver(cli_config).run(200, seed=4)
        assert c.cycles != a.cycles

    def test_trace_is_protocol_legal(self, cli_config):
        driver = RandomAccessDriver(cli_config, record_trace=True)
        driver.run(100, seed=1)
        audit_trace(driver.device.trace, cli_config.timing)

    def test_write_mix(self, cli_config):
        result = RandomAccessDriver(cli_config).run(
            300, write_fraction=0.3, seed=5
        )
        assert result.percent_of_peak > 20

    def test_invalid_arguments(self, cli_config):
        with pytest.raises(ConfigurationError):
            RandomAccessDriver(cli_config, queue_depth=0)
        with pytest.raises(ConfigurationError):
            RandomAccessDriver(cli_config).run(10, write_fraction=1.5)

    def test_efficiency_scales_with_devices(self):
        """The Crisp reconciliation: random loads approach ~95%
        efficiency only with many devices on the channel."""
        results = {}
        for devices in (1, 8):
            config = MemorySystemConfig.cli(
                geometry=ChannelGeometry(num_devices=devices)
            )
            results[devices] = RandomAccessDriver(config, queue_depth=8).run(
                1000, seed=7
            ).percent_of_peak
        assert results[1] < 70
        assert results[8] > 90

    def test_open_page_hurts_random_loads(self):
        """PI's open-page policy is the wrong choice for random
        accesses — the paper's Section 6 point that PI 'should perform
        much worse than CLI for more random, non-stream accesses'."""
        cli = RandomAccessDriver(MemorySystemConfig.cli()).run(500, seed=2)
        pi = RandomAccessDriver(MemorySystemConfig.pi()).run(500, seed=2)
        assert cli.percent_of_peak > pi.percent_of_peak
