"""Model-based property tests for the cache model.

The cache is checked against an independent brute-force reference
(explicit LRU lists) over random access sequences, and the placement
logic is checked for the non-overlap guarantees the paper's
assumptions require.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.model import CacheConfig, CacheModel
from repro.cpu.kernels import KERNELS
from repro.cpu.streams import Alignment, place_streams
from repro.memsys.config import MemorySystemConfig


class ReferenceCache:
    """Brute-force LRU/write-allocate/writeback cache."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.sets: List[List[Tuple[int, bool]]] = [
            [] for __ in range(config.num_sets)
        ]

    def access(self, address: int, is_write: bool):
        line = address // self.config.line_bytes
        ways = self.sets[line % self.config.num_sets]
        for index, (tag, dirty) in enumerate(ways):
            if tag == line:
                del ways[index]
                ways.append((line, dirty or is_write))
                return ("hit", None)
        victim: Optional[Tuple[int, bool]] = None
        if len(ways) >= self.config.associativity:
            victim = ways.pop(0)
        ways.append((line, is_write))
        writeback = (
            victim[0] * self.config.line_bytes
            if victim and victim[1]
            else None
        )
        return ("miss", writeback)


cache_configs = st.builds(
    CacheConfig,
    size_bytes=st.sampled_from([256, 512, 2048]),
    associativity=st.sampled_from([1, 2, 4]),
    line_bytes=st.just(32),
)
accesses = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=4095),
        st.booleans(),
    ),
    max_size=200,
)


class TestAgainstReference:
    @given(config=cache_configs, sequence=accesses)
    @settings(max_examples=150)
    def test_matches_brute_force_lru(self, config, sequence):
        model = CacheModel(config)
        reference = ReferenceCache(config)
        for address, is_write in sequence:
            outcome = model.access(address, is_write)
            kind, writeback = reference.access(address, is_write)
            assert outcome.hit == (kind == "hit")
            assert outcome.writeback_line == writeback

    @given(config=cache_configs, sequence=accesses)
    @settings(max_examples=50)
    def test_capacity_invariant(self, config, sequence):
        model = CacheModel(config)
        for address, is_write in sequence:
            model.access(address, is_write)
        for ways in model._sets:
            assert len(ways) <= config.associativity

    @given(config=cache_configs, sequence=accesses)
    @settings(max_examples=50)
    def test_flush_is_idempotent_and_complete(self, config, sequence):
        model = CacheModel(config)
        dirty_lines = set()
        for address, is_write in sequence:
            outcome = model.access(address, is_write)
            line = address // config.line_bytes * config.line_bytes
            if is_write:
                dirty_lines.add(line)
            if outcome.writeback_line is not None:
                dirty_lines.discard(outcome.writeback_line)
            if outcome.evicted_line is not None:
                dirty_lines.discard(outcome.evicted_line)
        assert set(model.flush_dirty_lines()) == dirty_lines
        assert model.flush_dirty_lines() == []


kernel_names = st.sampled_from(sorted(KERNELS))


class TestPlacementProperties:
    @given(
        kernel=kernel_names,
        org=st.sampled_from(["cli", "pi"]),
        alignment=st.sampled_from([Alignment.ALIGNED, Alignment.STAGGERED]),
        length=st.sampled_from([16, 64, 256, 1024]),
        stride=st.sampled_from([1, 2, 4, 7, 16]),
    )
    @settings(max_examples=120)
    def test_distinct_vectors_never_share_pages(
        self, kernel, org, alignment, length, stride
    ):
        """Section 4.1: distinct vectors share no DRAM pages."""
        config = getattr(MemorySystemConfig, org)()
        placed = place_streams(
            KERNELS[kernel].streams,
            config,
            length=length,
            stride=stride,
            alignment=alignment,
        )
        page = config.geometry.page_bytes
        page_sets: Dict[int, set] = {}
        vectors: Dict[str, int] = {}
        for spec, descriptor in zip(KERNELS[kernel].streams, placed):
            base = descriptor.base
            pages = {
                descriptor.element_address(i) // page for i in range(length)
            }
            key = vectors.setdefault(spec.vector, len(vectors))
            page_sets.setdefault(key, set()).update(pages)
        keys = list(page_sets)
        for i, a in enumerate(keys):
            for b in keys[i + 1:]:
                assert not (page_sets[a] & page_sets[b])

    @given(
        kernel=kernel_names,
        length=st.sampled_from([16, 128, 1024]),
        stride=st.sampled_from([1, 3, 8]),
    )
    @settings(max_examples=60)
    def test_every_element_address_is_on_device(self, kernel, length, stride):
        config = MemorySystemConfig.cli()
        placed = place_streams(
            KERNELS[kernel].streams, config, length=length, stride=stride
        )
        capacity = config.geometry.capacity_bytes
        for descriptor in placed:
            assert 0 <= descriptor.element_address(0)
            assert descriptor.element_address(length - 1) + 8 <= capacity
