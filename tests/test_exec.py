"""Tests for the sweep-execution subsystem (RunSpec, cache, pool)."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError, ExecutionError
from repro.exec import ResultCache, execution, run_specs
from repro.core.policies import BankAwarePolicy, RoundRobinPolicy
from repro.cpu.kernels import Kernel
from repro.cpu.streams import Alignment, Direction, StreamSpec
from repro.memsys.config import MemorySystemConfig
from repro.rdram.channel import ChannelGeometry
from repro.rdram.device import RdramGeometry
from repro.sim import runner
from repro.sim.results import SimulationResult
from repro.sim.runner import RunSpec, simulate
from repro.sim.sweep import Sweep


def small_grid() -> list:
    """A 32-point copy+daxpy grid, cheap enough to run twice."""
    return Sweep(
        kernel=["copy", "daxpy"],
        organization=["cli", "pi"],
        length=[64, 128],
        fifo_depth=[8, 16],
        alignment=["staggered", "aligned"],
    ).specs()


#: A kernel that is not in the KERNELS registry (offset read).
CUSTOM_KERNEL = Kernel(
    name="shift8",
    expression="y[i] <- x[i+8]",
    streams=(
        StreamSpec(name="x", vector="x", direction=Direction.READ, offset=8),
        StreamSpec(name="y", vector="y", direction=Direction.WRITE),
    ),
)


class _Unregistered(RoundRobinPolicy):
    """Runs like round-robin but is not the registered type."""


def _boom(*args, **kwargs):
    raise AssertionError("engine invoked on a path that must not simulate")


class TestRunSpec:
    def test_normalizes_spellings_to_one_key(self):
        by_name = RunSpec(kernel="copy", organization="PI", fifo_depth=8)
        by_object = RunSpec(
            kernel=runner.get_kernel("copy"),
            organization=MemorySystemConfig.pi(),
            fifo_depth=8,
            alignment=Alignment.STAGGERED,
            policy=None,
        )
        assert by_name == by_object
        assert by_name.canonical_key() == by_object.canonical_key()
        assert by_name.organization == "pi"
        assert by_object.kernel == "copy"

    def test_policy_instance_normalized_to_name(self):
        spec = RunSpec(kernel="copy", policy=BankAwarePolicy())
        assert spec.policy == "bank-aware"

    def test_roundtrip_is_identity(self):
        spec = RunSpec(kernel="vaxpy", organization="cli", length=256,
                       fifo_depth=32, stride=4, audit=True, refresh=True)
        again = RunSpec.from_dict(spec.to_dict())
        assert again == spec
        # canonical_key is valid, deterministic JSON
        assert json.loads(spec.canonical_key())["stride"] == 4

    def test_custom_config_roundtrips_structurally(self):
        config = MemorySystemConfig.pi(
            geometry=RdramGeometry(num_banks=16, doubled_banks=True)
        )
        spec = RunSpec(kernel="copy", organization=config)
        again = RunSpec.from_dict(json.loads(spec.canonical_key()))
        assert again.organization == config
        assert again == spec

    def test_channel_geometry_roundtrips(self):
        config = MemorySystemConfig.cli(
            geometry=ChannelGeometry(num_devices=4)
        )
        spec = RunSpec(kernel="daxpy", organization=config)
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_unregistered_kernel_roundtrips(self):
        spec = RunSpec(kernel=CUSTOM_KERNEL, length=64, fifo_depth=8)
        assert isinstance(spec.kernel, Kernel)  # not collapsed to a name
        again = RunSpec.from_dict(spec.to_dict())
        assert again == spec
        assert simulate(again) == simulate(spec)

    def test_custom_policy_instance_not_serializable(self):
        spec = RunSpec(kernel="copy", policy=_Unregistered())
        with pytest.raises(ConfigurationError, match="not in the POLICIES"):
            spec.canonical_key()

    def test_bad_alignment_rejected_at_construction(self):
        with pytest.raises(ValueError):
            RunSpec(kernel="copy", alignment="diagonal")

    def test_describe_mentions_the_point(self):
        label = RunSpec(kernel="copy", fifo_depth=8, policy="bank-aware").describe()
        assert "copy" in label and "f=8" in label and "bank-aware" in label


class TestResultSerialization:
    def test_roundtrip(self):
        result = simulate(RunSpec("copy", "cli", length=64, fifo_depth=16))
        again = SimulationResult.from_dict(result.to_dict())
        assert again == result

    def test_extra_keys_ignored(self):
        result = simulate(RunSpec("copy", "cli", length=64, fifo_depth=16))
        payload = result.to_dict()
        payload["percent_of_peak"] = result.percent_of_peak
        assert SimulationResult.from_dict(payload) == result

    def test_missing_field_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            SimulationResult.from_dict({"kernel": "copy"})


class TestResultCache:
    def test_store_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path, salt="v1")
        spec = RunSpec(kernel="copy", length=64, fifo_depth=8)
        assert cache.get(spec) is None
        result = simulate(spec)
        assert cache.put(spec, result)
        assert cache.get(spec) == result
        assert len(cache) == 1
        assert cache.path_for(spec).exists()

    def test_salt_change_invalidates(self, tmp_path):
        spec = RunSpec(kernel="copy", length=64, fifo_depth=8)
        result = simulate(spec)
        ResultCache(tmp_path, salt="v1").put(spec, result)
        assert ResultCache(tmp_path, salt="v1").get(spec) == result
        assert ResultCache(tmp_path, salt="v2").get(spec) is None

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path, salt="v1")
        spec = RunSpec(kernel="copy", length=64, fifo_depth=8)
        cache.put(spec, simulate(spec))
        cache.path_for(spec).write_text("not json{")
        assert cache.get(spec) is None

    def test_unserializable_spec_is_a_noop(self, tmp_path):
        cache = ResultCache(tmp_path, salt="v1")
        spec = RunSpec(kernel="copy", policy=_Unregistered())
        assert cache.get(spec) is None
        assert not cache.put(spec, simulate(spec))
        assert len(cache) == 0

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path, salt="v1")
        spec = RunSpec(kernel="copy", length=64, fifo_depth=8)
        cache.put(spec, simulate(spec))
        assert cache.clear() == 1
        assert len(cache) == 0


class TestRunSpecsSerial:
    def test_matches_direct_simulate_in_order(self):
        specs = [
            RunSpec(kernel="copy", length=64, fifo_depth=8),
            RunSpec(kernel="daxpy", length=64, fifo_depth=16),
        ]
        results = run_specs(specs)
        assert results[0] == simulate(RunSpec("copy", length=64, fifo_depth=8))
        assert results[1] == simulate(RunSpec("daxpy", length=64, fifo_depth=16))

    def test_warm_cache_rerun_performs_zero_simulations(
        self, tmp_path, monkeypatch
    ):
        cache = ResultCache(tmp_path, salt="v1")
        specs = small_grid()
        first = run_specs(specs, cache=cache)
        assert cache.stores == len(specs)
        # Any engine invocation on the rerun explodes.
        monkeypatch.setattr(runner, "run_smc", _boom)
        second = run_specs(specs, cache=cache)
        assert second == first
        assert cache.hits == len(specs)

    def test_progress_events(self, tmp_path):
        cache = ResultCache(tmp_path, salt="v1")
        spec = RunSpec(kernel="copy", length=64, fifo_depth=8)
        events = []
        run_specs([spec], cache=cache, progress=events.append)
        run_specs([spec], cache=cache, progress=events.append)
        assert [e.cached for e in events] == [False, True]
        assert all(e.index == 0 and e.done == e.total == 1 for e in events)
        assert events[0].result == events[1].result


class TestRunSpecsPooled:
    def test_parallel_identical_to_serial_32_points(self):
        specs = small_grid()
        assert len(specs) == 32
        serial = run_specs(specs)
        pooled = run_specs(specs, workers=4)
        assert pooled == serial  # full SimulationResult equality

    def test_pooled_fills_and_reuses_cache(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path, salt="v1")
        specs = small_grid()[:8]
        first = run_specs(specs, workers=2, cache=cache)
        assert len(cache) == len(specs)
        monkeypatch.setattr(runner, "run_smc", _boom)
        second = run_specs(specs, workers=2, cache=cache)
        assert second == first

    def test_custom_config_crosses_process_boundary(self):
        config = MemorySystemConfig.pi(
            geometry=RdramGeometry(num_banks=16, doubled_banks=True)
        )
        specs = [
            RunSpec(kernel="copy", organization=config, length=64,
                    fifo_depth=depth)
            for depth in (8, 16)
        ]
        assert run_specs(specs, workers=2) == run_specs(specs)

    def test_poisoned_worker_is_retried_and_sweep_completes(
        self, tmp_path, monkeypatch
    ):
        specs = [
            RunSpec(kernel=k, length=64, fifo_depth=8)
            for k in ("copy", "daxpy", "vaxpy", "hydro")
        ]
        expected = run_specs(specs)
        sentinel = tmp_path / "crashed-once"
        monkeypatch.setenv("REPRO_EXEC_CRASH_KERNEL", "daxpy")
        monkeypatch.setenv("REPRO_EXEC_CRASH_ONCE", str(sentinel))
        assert run_specs(specs, workers=2) == expected
        assert sentinel.exists()  # a worker really did die

    def test_persistent_crasher_exhausts_retries(self, monkeypatch):
        specs = [RunSpec(kernel="copy", length=64, fifo_depth=8)]
        monkeypatch.setenv("REPRO_EXEC_CRASH_KERNEL", "copy")
        with pytest.raises(ExecutionError, match="crashed 2 times"):
            run_specs(specs, workers=2)

    def test_unserializable_spec_fails_fast(self):
        specs = [RunSpec(kernel="copy", policy=_Unregistered())]
        with pytest.raises(ConfigurationError, match="not in the POLICIES"):
            run_specs(specs, workers=2)


class TestExecutionContext:
    def test_simulate_hits_ambient_cache(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path, salt="v1")
        with execution(cache=cache):
            first = simulate(RunSpec("copy", "pi", length=64, fifo_depth=8))
            monkeypatch.setattr(runner, "run_smc", _boom)
            second = simulate(RunSpec("copy", "pi", length=64, fifo_depth=8))
        assert second == first
        assert cache.hits == 1

    def test_instrumented_runs_bypass_the_cache(self, tmp_path):
        from repro.obs import Instrumentation

        cache = ResultCache(tmp_path, salt="v1")
        with execution(cache=cache):
            simulate(RunSpec("copy", "pi", length=64, fifo_depth=8))
            obs = Instrumentation()
            simulate(RunSpec("copy", "pi", length=64, fifo_depth=8), obs=obs)
        assert cache.hits == 0  # the obs run neither read nor wrote
        assert len(cache) == 1

    def test_contexts_nest_and_unwind(self, tmp_path):
        from repro.exec.context import active_cache

        outer = ResultCache(tmp_path / "outer")
        inner = ResultCache(tmp_path / "inner")
        assert active_cache() is None
        with execution(cache=outer):
            assert active_cache() is outer
            with execution(cache=inner):
                assert active_cache() is inner
            assert active_cache() is outer
        assert active_cache() is None

    def test_cache_accepts_a_path(self, tmp_path):
        with execution(cache=tmp_path) as context:
            assert isinstance(context.cache, ResultCache)
            assert context.cache.root == tmp_path
