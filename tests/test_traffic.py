"""Tests for the open-loop multi-client traffic layer.

Covers workload validation and seeded determinism (identical latency
histograms across repeated runs), Zipf hot-set skew concentrating
bank traffic, the per-client bank-budget regulator enforcing its
rate bound, and a four-channel run reporting latency percentiles and
balanced per-channel bandwidth shares.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.memsys.address import get_address_mapping
from repro.memsys.config import MemorySystemConfig, MemoryTopology
from repro.obs.metrics import MetricsRegistry
from repro.traffic.driver import LATENCY_BUCKETS
from repro.traffic import (
    COMPONENTS,
    BankBudgetRegulator,
    TrafficResult,
    TrafficWorkload,
    generate_requests,
    run_traffic,
)

#: Small populations keep each simulated run under a second.
SMALL = TrafficWorkload(clients=64, requests=200, seed=9)

HOT = TrafficWorkload(
    clients=8,
    requests=400,
    mean_gap=1.0,
    zipf_s=2.5,
    hot_lines=2,
    hot_fraction=1.0,
    seed=5,
)


class TestWorkloadValidation:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("clients", 0),
            ("requests", 0),
            ("mean_gap", 0.0),
            ("zipf_s", -1.0),
            ("hot_lines", 0),
            ("hot_fraction", 1.5),
            ("write_fraction", -0.1),
        ],
    )
    def test_rejects_bad_parameters(self, field, value):
        with pytest.raises(ConfigurationError):
            TrafficWorkload(**{field: value})


class TestRequestGeneration:
    def test_deterministic_per_seed(self, cli_config):
        mapping = get_address_mapping(cli_config)
        first = generate_requests(SMALL, mapping)
        second = generate_requests(SMALL, mapping)
        assert first == second

    def test_different_seeds_differ(self, cli_config):
        mapping = get_address_mapping(cli_config)
        a = generate_requests(SMALL, mapping)
        b = generate_requests(
            TrafficWorkload(clients=64, requests=200, seed=10), mapping
        )
        assert a != b

    def test_arrivals_sorted_and_addresses_in_range(self, cli_config):
        mapping = get_address_mapping(cli_config)
        requests = generate_requests(SMALL, mapping)
        assert len(requests) == SMALL.requests
        arrivals = [request.arrival for request in requests]
        assert arrivals == sorted(arrivals)
        line = cli_config.cacheline_bytes
        for request in requests:
            assert 0 <= request.address < mapping.capacity_bytes
            assert request.address % line == 0

    def test_write_fraction_zero_is_all_reads(self, cli_config):
        from repro.rdram.packets import BusDirection

        mapping = get_address_mapping(cli_config)
        requests = generate_requests(
            TrafficWorkload(
                clients=8, requests=100, write_fraction=0.0, seed=2
            ),
            mapping,
        )
        assert all(r.direction is BusDirection.READ for r in requests)


class TestSeededDeterminism:
    def test_identical_latency_histograms(self):
        registries = [MetricsRegistry(), MetricsRegistry()]
        results = [
            run_traffic(workload=SMALL, channels=2, registry=registry)
            for registry in registries
        ]
        histograms = [
            registry.histogram("traffic.latency_cycles", LATENCY_BUCKETS)
            for registry in registries
        ]
        assert histograms[0].count == SMALL.requests
        assert histograms[0].bucket_counts == histograms[1].bucket_counts
        assert results[0].p50_latency == results[1].p50_latency
        assert results[0].p99_latency == results[1].p99_latency
        assert results[0].channel_bytes == results[1].channel_bytes
        assert results[0].bank_bytes == results[1].bank_bytes


class TestZipfSkew:
    def test_hot_sets_concentrate_bank_traffic(self):
        skewed = run_traffic(
            workload=TrafficWorkload(
                clients=4,
                requests=400,
                zipf_s=2.0,
                hot_lines=8,
                hot_fraction=1.0,
                seed=3,
            )
        )
        uniform = run_traffic(
            workload=TrafficWorkload(
                clients=4,
                requests=400,
                zipf_s=0.0,
                hot_fraction=0.0,
                seed=3,
            )
        )
        top_skewed = max(
            skewed.bank_share(bank) for bank in skewed.bank_bytes
        )
        top_uniform = max(
            uniform.bank_share(bank) for bank in uniform.bank_bytes
        )
        assert top_skewed > top_uniform


class TestRegulator:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BankBudgetRegulator(window_cycles=0)
        with pytest.raises(ConfigurationError):
            BankBudgetRegulator(budget_bytes=0)

    def test_budget_below_cacheline_rejected(self):
        with pytest.raises(ConfigurationError):
            run_traffic(
                workload=HOT,
                regulator=BankBudgetRegulator(
                    window_cycles=512, budget_bytes=16
                ),
            )

    def test_bounds_hot_client_bank_rate(self):
        free = run_traffic(workload=HOT)
        regulator = BankBudgetRegulator(window_cycles=512, budget_bytes=32)
        capped = run_traffic(workload=HOT, regulator=regulator)
        bound = regulator.budget_bytes / regulator.window_cycles
        # Slack covers the fractional final window.
        assert capped.max_client_bank_rate <= bound * 1.1
        assert capped.max_client_bank_rate < free.max_client_bank_rate
        assert capped.deferrals > 0
        # Regulation defers, never drops: all traffic is still served.
        assert capped.total_bytes == free.total_bytes
        assert capped.cycles > free.cycles

    def test_unregulated_run_reports_no_deferrals(self):
        result = run_traffic(workload=SMALL)
        assert not result.regulated and result.deferrals == 0


class TestFourChannelRun:
    def test_percentiles_and_shares(self):
        result = run_traffic(
            workload=TrafficWorkload(clients=128, requests=400, seed=11),
            channels=4,
        )
        assert result.channels == 4
        assert 0 < result.p50_latency <= result.p90_latency
        assert result.p90_latency <= result.p99_latency
        assert len(result.channel_bytes) == 4
        assert sum(result.channel_shares) == pytest.approx(1.0)
        # Channel striping keeps the load roughly balanced.
        assert max(result.channel_shares) < 2 * min(result.channel_shares)
        assert result.total_bytes == sum(result.bank_bytes.values())
        assert result.total_bytes == sum(result.client_bytes.values())

    def test_more_channels_cut_latency(self):
        workload = TrafficWorkload(
            clients=128, requests=400, mean_gap=2.0, seed=11
        )
        single = run_traffic(workload=workload, channels=1)
        quad = run_traffic(workload=workload, channels=4)
        assert quad.p50_latency < single.p50_latency
        assert quad.cycles < single.cycles


class TestTopologyArguments:
    def test_config_and_arguments_conflict(self):
        config = MemorySystemConfig.cli(
            topology=MemoryTopology(channels=2)
        )
        with pytest.raises(ConfigurationError):
            run_traffic(config=config, workload=SMALL, channels=4)

    def test_config_topology_accepted_directly(self):
        config = MemorySystemConfig.cli(
            topology=MemoryTopology(channels=2)
        )
        result = run_traffic(config=config, workload=SMALL)
        assert result.channels == 2

    def test_summary_mentions_shares(self):
        result = run_traffic(workload=SMALL, channels=2)
        assert "p50=" in result.summary()
        assert "channel shares" in result.summary()
        assert "util" in result.summary()


class TestLatencyAttribution:
    """Per-request latency decomposition and its exactness invariant."""

    @pytest.mark.parametrize(
        "kwargs",
        [
            {},
            {"channels": 2},
            {"channels": 2, "refresh": True},
            {
                "regulator": BankBudgetRegulator(
                    window_cycles=512, budget_bytes=32
                )
            },
        ],
    )
    def test_components_sum_to_total_latency(self, kwargs):
        registry = MetricsRegistry()
        workload = HOT if "regulator" in kwargs else SMALL
        result = run_traffic(
            workload=workload, registry=registry, **kwargs
        )
        assert set(result.component_cycles) == set(COMPONENTS)
        latency = registry.histogram(
            "traffic.latency_cycles", LATENCY_BUCKETS
        )
        # The closure invariant, checked per request inside the
        # driver, must also hold in aggregate.
        assert sum(result.component_cycles.values()) == int(latency.sum)
        for name in COMPONENTS:
            component = registry.histogram(
                "traffic.latency_component_cycles",
                LATENCY_BUCKETS,
                component=name,
            )
            assert component.count == result.requests

    def test_component_shares_and_means(self):
        result = run_traffic(workload=SMALL)
        shares = result.component_shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        means = result.mean_component_cycles()
        assert sum(means.values()) * result.requests == pytest.approx(
            sum(result.component_cycles.values())
        )
        assert means["transfer"] > 0

    def test_refresh_shows_up_as_refresh_blocked(self):
        # An aggressive refresh cadence must steal cycles that the
        # attribution pins on refresh_blocked, nowhere else.
        quiet = run_traffic(workload=SMALL)
        noisy = run_traffic(workload=SMALL, refresh=200)
        assert quiet.refreshes == 0
        assert noisy.refreshes > 0
        assert quiet.component_cycles["refresh_blocked"] == 0
        assert noisy.component_cycles["refresh_blocked"] > 0

    def test_channel_utilization_reported(self):
        result = run_traffic(workload=SMALL, channels=2)
        assert len(result.channel_utilization) == 2
        assert all(0.0 < u <= 1.0 for u in result.channel_utilization)


class TestTelemetryWindow:
    def test_windowed_series_reconcile(self):
        registry = MetricsRegistry()
        result = run_traffic(
            workload=SMALL,
            channels=2,
            registry=registry,
            telemetry_window=256,
        )
        bank_series = [
            metric
            for metric in registry.all()
            if metric.name == "traffic.bank_bytes"
        ]
        assert bank_series
        assert sum(s.total() for s in bank_series) == result.total_bytes
        busy = [
            metric
            for metric in registry.all()
            if metric.name == "traffic.channel_busy_cycles"
        ]
        assert len(busy) == 2
        assert tuple(int(s.total()) for s in busy) == \
            result.channel_busy_cycles
        # Dense series: every window sampled, even all-zero ones.
        windows = {len(s.samples) for s in bank_series + busy}
        assert len(windows) == 1

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            run_traffic(workload=SMALL, telemetry_window=0)

    def test_window_sampling_is_bit_neutral(self):
        plain = run_traffic(workload=SMALL, channels=2)
        sampled = run_traffic(
            workload=SMALL, channels=2, telemetry_window=64
        )
        assert plain.p50_latency == sampled.p50_latency
        assert plain.cycles == sampled.cycles
        assert plain.bank_bytes == sampled.bank_bytes


class TestResultRoundTrip:
    def test_to_dict_from_dict(self):
        result = run_traffic(
            workload=SMALL, channels=2, telemetry_window=128, refresh=True
        )
        clone = TrafficResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert clone == result
