"""Tests for the compiler front end (stream detection, Section 3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CompileError
from repro.compiler import (
    choose_fifo_depth,
    compile_loop,
    detect_streams,
    simulate_loop,
)
from repro.cpu.kernels import COPY, DAXPY, HYDRO, VAXPY
from repro.cpu.streams import Direction


def names_and_directions(source, **kwargs):
    return [
        (s.name, s.direction) for s in detect_streams(source, **kwargs)
    ]


class TestPaperKernelsFromSource:
    def test_copy(self):
        kernel = compile_loop("y[i] = x[i]")
        assert [(s.vector, s.direction) for s in kernel.streams] == [
            (s.vector, s.direction) for s in COPY.streams
        ]

    def test_daxpy(self):
        kernel = compile_loop("y[i] = a * x[i] + y[i]")
        assert kernel.num_read_streams == DAXPY.num_read_streams
        assert kernel.num_write_streams == DAXPY.num_write_streams
        vectors = [s.vector for s in kernel.streams]
        assert vectors == ["x", "y", "y"]

    def test_vaxpy(self):
        kernel = compile_loop("y[i] = a[i]*x[i] + y[i]")
        assert kernel.num_read_streams == VAXPY.num_read_streams
        assert [s.vector for s in kernel.streams] == ["a", "x", "y", "y"]

    def test_hydro_with_offsets(self):
        kernel = compile_loop(
            "x[i] = q + y[i]*(r*zx[i+10] + t*zx[i+11])"
        )
        assert kernel.num_read_streams == HYDRO.num_read_streams
        offsets = sorted(
            s.offset for s in kernel.streams if s.vector == "zx"
        )
        assert offsets == [10, 11]

    def test_scalars_generate_no_streams(self):
        specs = detect_streams("y[i] = a*x[i] + b")
        assert [s.vector for s in specs] == ["x", "y"]


class TestLanguageForms:
    def test_augmented_assignment_is_rmw(self):
        specs = detect_streams("y[i] += x[i]")
        assert [(s.vector, s.direction) for s in specs] == [
            ("x", Direction.READ),
            ("y", Direction.READ),
            ("y", Direction.WRITE),
        ]

    def test_scalar_accumulator(self):
        specs = detect_streams("s += x[i]*y[i]")
        assert all(s.direction is Direction.READ for s in specs)

    def test_tuple_swap(self):
        specs = detect_streams("x[i], y[i] = y[i], x[i]")
        assert len(specs) == 4
        assert sum(s.direction is Direction.WRITE for s in specs) == 2

    def test_multiple_statements(self):
        specs = detect_streams("u[i] = x[i]\nv[i] = y[i]")
        assert [s.vector for s in specs] == ["x", "u", "y", "v"]

    def test_strided_subscript(self):
        specs = detect_streams("y[i] = x[2*i + 1]")
        x = specs[0]
        assert x.stride_factor == 2
        assert x.offset == 1

    def test_custom_index_name(self):
        specs = detect_streams("y[k] = x[k]", index="k")
        assert [s.vector for s in specs] == ["x", "y"]

    def test_duplicate_reference_collapses(self):
        specs = detect_streams("y[i] = x[i] + x[i]")
        assert [s.vector for s in specs] == ["x", "y"]


class TestRejections:
    @pytest.mark.parametrize(
        "source,match",
        [
            ("y[i] = x[idx[i]]", "indirect"),
            ("y[i] = x[i*i]", "not linear"),
            ("y[i] = x[i] + i", "inside subscripts"),
            ("y[i] = x[j]", "unknown name"),
            ("y[i] = x[i-4]", "negative"),
            ("y[i] = x[4-i]", "coefficient"),
            ("while True: pass", "only assignments"),
            ("y[i] = x[i] =", "does not parse"),
            ("a = 1", "touches no arrays"),
            ("y[i] = x[1.5]", "non-integer"),
            ("y[i], z[i] = x[i]", "matching tuple"),
            ("y[i] = z = x[i]", "chained"),
            ("y[i].q = x[i]", "array elements or scalars"),
        ],
    )
    def test_rejected(self, source, match):
        with pytest.raises(CompileError, match=match):
            detect_streams(source)


class TestFifoSelection:
    def test_bound_mode_prefers_deep_fifos_for_long_vectors(self):
        kernel = compile_loop("y[i] = x[i]")
        depth = choose_fifo_depth(kernel, "cli", length=4096)
        assert depth >= 128

    def test_simulate_mode_runs(self):
        kernel = compile_loop("y[i] = a*x[i] + y[i]")
        depth = choose_fifo_depth(
            kernel, "cli", length=128, candidates=(8, 32), simulate=True
        )
        assert depth in (8, 32)

    def test_empty_candidates_rejected(self):
        with pytest.raises(CompileError):
            choose_fifo_depth(compile_loop("y[i] = x[i]"), candidates=())


subscript_terms = st.tuples(
    st.integers(min_value=1, max_value=4),   # coefficient
    st.integers(min_value=0, max_value=31),  # offset
)


class TestDetectionProperties:
    @given(
        terms=st.lists(subscript_terms, min_size=1, max_size=4),
        write_term=subscript_terms,
    )
    @settings(max_examples=200)
    def test_random_affine_loops_round_trip(self, terms, write_term):
        """Any loop built from affine subscripts compiles, and every
        detected stream carries exactly the coefficient/offset written
        in the source."""
        reads = []
        for position, (coefficient, offset) in enumerate(terms):
            subscript = f"{coefficient}*i"
            if offset:
                subscript += f" + {offset}"
            reads.append(f"src{position}[{subscript}]")
        w_coefficient, w_offset = write_term
        target = f"dst[{w_coefficient}*i + {w_offset}]"
        source = f"{target} = " + " + ".join(reads)
        specs = detect_streams(source)
        read_specs = [s for s in specs if s.direction is Direction.READ]
        write_specs = [s for s in specs if s.direction is Direction.WRITE]
        assert len(write_specs) == 1
        assert write_specs[0].stride_factor == w_coefficient
        assert write_specs[0].offset == w_offset
        assert len(read_specs) == len(set(
            (f"src{p}", c, o) for p, (c, o) in enumerate(terms)
        ))
        for position, (coefficient, offset) in enumerate(terms):
            matching = [
                s for s in read_specs
                if s.vector == f"src{position}"
                and s.stride_factor == coefficient
                and s.offset == offset
            ]
            assert matching

    @given(terms=st.lists(subscript_terms, min_size=1, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_compiled_loops_simulate_legally(self, terms):
        """Every generated loop runs through the SMC with a clean
        protocol audit."""
        reads = " + ".join(
            f"v{p}[{c}*i + {o}]" for p, (c, o) in enumerate(terms)
        )
        result = simulate_loop(
            f"out[i] = {reads}",
            "cli",
            length=32,
            fifo_depth=8,
            audit=True,
        )
        assert result.useful_bytes > 0


class TestSimulateLoop:
    def test_end_to_end(self):
        result = simulate_loop(
            "y[i] = a*x[i] + y[i]", "pi", length=512, fifo_depth=32,
            audit=True,
        )
        assert result.percent_of_peak > 80

    def test_auto_depth(self):
        result = simulate_loop("y[i] = x[i]", "cli", length=256)
        assert result.fifo_depth in (8, 16, 32, 64, 128, 256)

    def test_offset_streams_share_pages_legally(self):
        result = simulate_loop(
            "x[i] = q + y[i]*(r*zx[i+10] + t*zx[i+11])",
            "cli",
            length=512,
            fifo_depth=32,
            audit=True,
        )
        assert result.percent_of_peak > 50
