"""Tests for MSU scheduling policies."""

from __future__ import annotations


from repro.core.policies import (
    POLICIES,
    BankAwarePolicy,
    RoundRobinPolicy,
    SpeculativePrechargePolicy,
)
from repro.core.msu import MemorySchedulingUnit
from repro.core.sbu import StreamBufferUnit
from repro.cpu.kernels import DAXPY, TRIAD
from repro.cpu.streams import Alignment, place_streams
from repro.memsys.config import MemorySystemConfig
from repro.rdram.device import RdramDevice


def make_system(policy, org="cli", alignment=Alignment.STAGGERED, length=32, depth=8):
    config = getattr(MemorySystemConfig, org)()
    descriptors = place_streams(
        DAXPY.streams, config, length=length, alignment=alignment
    )
    device = RdramDevice(timing=config.timing, geometry=config.geometry)
    sbu = StreamBufferUnit.from_descriptors(descriptors, config, depth)
    return device, sbu, MemorySchedulingUnit(device, sbu, policy)


class TestRegistry:
    def test_policy_names(self):
        assert set(POLICIES) == {
            "round-robin", "bank-aware", "speculative-precharge"
        }

    def test_instances_carry_names(self):
        assert RoundRobinPolicy().name == "round-robin"
        assert BankAwarePolicy().name == "bank-aware"
        assert SpeculativePrechargePolicy().name == "speculative-precharge"


class TestRoundRobin:
    def test_stays_on_current_while_serviceable(self):
        device, sbu, msu = make_system(RoundRobinPolicy())
        policy = msu.policy
        assert policy.choose(0, sbu, 0, device) == 0
        sbu[0].note_issue()
        assert policy.choose(0, sbu, 0, device) == 0

    def test_advances_past_full_fifo(self):
        device, sbu, msu = make_system(RoundRobinPolicy(), depth=2)
        sbu[0].note_issue()  # read FIFO 0 now full (2 elements in flight)
        assert not sbu[0].serviceable
        assert msu.policy.choose(0, sbu, 0, device) == 1

    def test_skips_empty_write_fifo(self):
        device, sbu, msu = make_system(RoundRobinPolicy(), depth=2)
        sbu[0].note_issue()
        sbu[1].note_issue()
        # Both read FIFOs full, write FIFO empty: nothing to do.
        assert msu.policy.choose(0, sbu, 0, device) is None

    def test_wraps_around(self):
        device, sbu, msu = make_system(RoundRobinPolicy(), depth=2)
        sbu[2].cpu_push()
        sbu[2].cpu_push()
        sbu[1].note_issue()
        assert msu.policy.choose(0, sbu, 1, device) == 2

    def test_pace_allows_command_lookahead(self, timing):
        device, sbu, msu = make_system(RoundRobinPolicy())
        events = msu.tick(0)
        # Next decision lands t_RCD before the issued COL goes out.
        first_col = timing.t_rcd  # ACT at 0, COL at t_RCD
        assert msu.next_decision == max(1, first_col - timing.t_rcd + 0) or (
            msu.next_decision <= first_col
        )


class TestBankAware:
    def test_prefers_ready_bank(self):
        device, sbu, msu = make_system(
            BankAwarePolicy(), alignment=Alignment.ALIGNED
        )
        policy = msu.policy
        # Open bank 0 for FIFO 0's row, making only FIFO 0 "ready".
        unit = sbu[0].next_unit()
        device.issue_act(unit.location.bank, unit.location.row, 0)
        choice = policy.choose(timing_slack(), sbu, 1, device)
        assert choice == 0

    def test_falls_back_to_round_robin_order(self):
        device, sbu, msu = make_system(BankAwarePolicy())
        # Nothing open: no bank is "ready" beyond plain ACT readiness,
        # which every closed bank satisfies; first serviceable wins.
        assert msu.policy.choose(0, sbu, 0, device) == 0

    def test_bank_holding_other_row_not_ready(self):
        device, sbu, msu = make_system(
            BankAwarePolicy(), alignment=Alignment.ALIGNED
        )
        unit = sbu[0].next_unit()
        device.issue_act(unit.location.bank, unit.location.row + 1, 0)
        assert not msu.policy.bank_ready(device, unit, 50, slack=4)


def timing_slack():
    return 40  # comfortably past t_RCD so COL readiness binds


class TestSpeculativePrecharge:
    def test_speculates_upcoming_page(self):
        config = MemorySystemConfig.pi()
        descriptors = place_streams(TRIAD.streams, config, length=256)
        device = RdramDevice(timing=config.timing, geometry=config.geometry)
        sbu = StreamBufferUnit.from_descriptors(descriptors, config, 32)
        msu = MemorySchedulingUnit(device, sbu, SpeculativePrechargePolicy(lookahead=80))
        cycle = 0
        while msu.speculative_activations == 0 and cycle < 3000:
            for event in msu.tick(cycle):
                sbu[event.fifo_index].note_arrival(event.elements)
            for fifo in sbu:
                if not fifo.is_read and fifo.cpu_can_push():
                    fifo.cpu_push()
            for fifo in sbu:
                while fifo.cpu_can_pop():
                    fifo.cpu_pop()
            msu.wake(cycle + 1)
            cycle += 1
        assert msu.speculative_activations > 0

    def test_inherits_round_robin_choice(self):
        device, sbu, msu = make_system(SpeculativePrechargePolicy())
        assert msu.policy.choose(0, sbu, 0, device) == 0
