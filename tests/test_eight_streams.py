"""The paper's eight-stream configuration, simulated end to end.

Section 6 quotes its most precise numbers for "a computation on
eight, independent, unit-stride streams (seven read-streams and one
write-stream, aligned in memory so that there are no bank conflicts
between cacheline accesses)".  The analytic bounds reproduce those
numbers exactly (see test_analytic_cache); here the same configuration
runs through the simulators.
"""

from __future__ import annotations

import pytest

from repro.analytic.cache import natural_order_bound
from repro.cpu.kernels import Kernel
from repro.cpu.streams import Direction, StreamSpec
from repro.memsys.config import MemorySystemConfig
from repro.naturalorder.controller import NaturalOrderController
from repro.sim.runner import RunSpec, simulate

STREAM8 = Kernel(
    name="stream8",
    expression="w[i] <- f(r0[i], ..., r6[i])",
    streams=tuple(
        StreamSpec(f"r{k}", f"r{k}", Direction.READ) for k in range(7)
    ) + (StreamSpec("w", "w", Direction.WRITE),),
)


class TestEightStreams:
    def test_stream_counts(self):
        assert STREAM8.num_read_streams == 7
        assert STREAM8.num_write_streams == 1

    @pytest.mark.parametrize(
        "org,quoted", [("pi", 88.68), ("cli", 76.11)]
    )
    def test_natural_order_sim_tracks_quoted_bound(self, org, quoted):
        """The simulated baseline lands within 20% of the number the
        paper quotes for this exact configuration."""
        config = getattr(MemorySystemConfig, org)()
        result = NaturalOrderController(config).run(STREAM8, length=1024)
        assert result.percent_of_peak == pytest.approx(quoted, rel=0.20)

    def test_more_streams_beat_the_four_stream_kernels(self):
        """Section 6: 'Maximum effective bandwidth increases with the
        number of streams in the computation' — true of the simulated
        baseline as well as the bounds."""
        for org in ("cli", "pi"):
            config = getattr(MemorySystemConfig, org)()
            eight = NaturalOrderController(config).run(STREAM8, length=1024)
            four = natural_order_bound(config, 3, 1).percent_of_peak
            assert eight.percent_of_peak > four * 0.95

    @pytest.mark.parametrize("org", ["cli", "pi"])
    def test_smc_stays_uniform_at_eight_streams(self, org):
        """'Performance for the SMC is uniformly good, regardless of
        the number of streams in the loop.'"""
        result = simulate(RunSpec(
            STREAM8, org, length=1024, fifo_depth=128, audit=True
        ))
        assert result.percent_of_peak > 88

    def test_smc_beats_natural_order_even_here(self):
        """Even in the baseline's best case (eight streams), the SMC
        wins on both organizations."""
        for org in ("cli", "pi"):
            config = getattr(MemorySystemConfig, org)()
            natural = NaturalOrderController(config).run(STREAM8, length=1024)
            smc = simulate(RunSpec(STREAM8, config, length=1024, fifo_depth=128))
            assert smc.percent_of_peak > natural.percent_of_peak

    def test_stride_four_collapse(self):
        """The quoted stride-4 collapse (22.17/19.03%) in simulation."""
        for org, quoted in (("pi", 22.17), ("cli", 19.03)):
            config = getattr(MemorySystemConfig, org)()
            result = NaturalOrderController(config).run(
                STREAM8, length=1024, stride=4
            )
            assert result.percent_of_peak == pytest.approx(quoted, rel=0.35)