"""Tests for the non-unit-stride SMC bound extension."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.analytic.smc import smc_bound
from repro.memsys.config import MemorySystemConfig
from repro.sim.runner import RunSpec, simulate


@pytest.fixture
def pi():
    return MemorySystemConfig.pi()


class TestStridedSmcBound:
    def test_unit_stride_unchanged(self, pi):
        assert smc_bound(pi, 3, 1, 1024, 128) == smc_bound(
            pi, 3, 1, 1024, 128, stride=1
        )

    def test_strided_startup_doubles_fill_time(self, pi):
        unit = smc_bound(pi, 3, 1, 1024, 128, stride=1)
        strided = smc_bound(pi, 3, 1, 1024, 128, stride=4)
        # f * t_PACK / w_p term doubles when w_p drops from 2 to 1.
        fill_unit = unit.startup_delay - pi.timing.t_rac - pi.timing.t_rp
        fill_strided = strided.startup_delay - pi.timing.t_rac - pi.timing.t_rp
        assert fill_strided == pytest.approx(2 * fill_unit)

    def test_strided_turnaround_amortizes_better(self, pi):
        # Twice the data cycles per tour halves the relative turnaround.
        unit = smc_bound(pi, 3, 1, 1024, 128, stride=1)
        strided = smc_bound(pi, 3, 1, 1024, 128, stride=4)
        assert (
            strided.percent_asymptotic_limit > unit.percent_asymptotic_limit
        )

    def test_all_strides_above_one_equivalent(self, pi):
        # Beyond stride 1, every packet carries one element regardless.
        assert smc_bound(pi, 3, 1, 1024, 64, stride=2) == smc_bound(
            pi, 3, 1, 1024, 64, stride=60
        )

    def test_bad_stride_rejected(self, pi):
        with pytest.raises(ConfigurationError):
            smc_bound(pi, 3, 1, 1024, 64, stride=0)

    @pytest.mark.parametrize("stride", [4, 12, 24])
    def test_simulated_strided_smc_tracks_bound(self, pi, stride):
        """Figure 9's PI-SMC series stays at or under the extended
        bound.  A small overshoot is tolerated: the bound's startup
        term assumes whole-FIFO refills, which our MSU (like the
        paper's, whose simulations also occasionally touch their
        bounds) slightly beats at small strides."""
        bound = smc_bound(pi, 3, 1, 1024, 128, stride=stride)
        result = simulate(RunSpec(
            "vaxpy", pi, length=1024, fifo_depth=128, stride=stride
        ))
        assert result.percent_of_attainable <= (
            bound.percent_combined_limit + 2.0
        )
