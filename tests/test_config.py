"""Tests for the memory-system configuration."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.memsys.config import (
    ELEMENT_BYTES,
    ELEMENTS_PER_PACKET,
    Interleaving,
    MemorySystemConfig,
    PagePolicy,
)
from repro.rdram.device import RdramGeometry


class TestConstructors:
    def test_cli_pairs_closed_page(self):
        config = MemorySystemConfig.cli()
        assert config.interleaving is Interleaving.CACHELINE
        assert config.page_policy is PagePolicy.CLOSED

    def test_pi_pairs_open_page(self):
        config = MemorySystemConfig.pi()
        assert config.interleaving is Interleaving.PAGE
        assert config.page_policy is PagePolicy.OPEN

    def test_cross_pairing_possible(self):
        config = MemorySystemConfig.cli(page_policy=PagePolicy.OPEN)
        assert config.page_policy is PagePolicy.OPEN

    def test_custom_cacheline(self):
        config = MemorySystemConfig.cli(cacheline_bytes=64)
        assert config.elements_per_cacheline == 8
        assert config.packets_per_cacheline == 4


class TestValidation:
    def test_cacheline_must_be_packet_multiple(self):
        with pytest.raises(ConfigurationError, match="packet"):
            MemorySystemConfig(cacheline_bytes=24)

    def test_page_must_be_cacheline_multiple(self):
        with pytest.raises(ConfigurationError, match="page size"):
            MemorySystemConfig(
                cacheline_bytes=48 * 16 // 16 * 16,  # 768, divides nothing
            )


class TestDerivedQuantities:
    def test_paper_constants(self):
        config = MemorySystemConfig.cli()
        assert ELEMENT_BYTES == 8
        assert ELEMENTS_PER_PACKET == 2
        assert config.elements_per_cacheline == 4  # L_c
        assert config.elements_per_page == 128  # L_P
        assert config.cachelines_per_page == 32

    def test_describe_mentions_organization(self):
        assert "CLI" in MemorySystemConfig.cli().describe()
        assert "open" in MemorySystemConfig.pi().describe()

    def test_custom_geometry_flows_through(self):
        config = MemorySystemConfig.pi(
            geometry=RdramGeometry(num_banks=16, page_bytes=2048)
        )
        assert config.elements_per_page == 256
