"""Unit tests for the shared discrete-event simulation kernel."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.errors import SchedulingError
from repro.sim.kernel import (
    BackgroundComponent,
    EventScheduler,
    ResultBuilder,
    SimClock,
    Simulation,
    TransactionPump,
)


@dataclass(frozen=True)
class Ping:
    cycle: int
    tag: str = ""


class TestEventScheduler:
    def test_orders_by_cycle(self):
        scheduler = EventScheduler()
        scheduler.post(Ping(5, "late"))
        scheduler.post(Ping(2, "early"))
        assert scheduler.next_event_cycle == 2
        assert [e.tag for e in scheduler.pop_due(5)] == ["early", "late"]
        assert scheduler.empty

    def test_same_cycle_preserves_posting_order(self):
        scheduler = EventScheduler()
        for tag in "abc":
            scheduler.post(Ping(3, tag))
        assert [e.tag for e in scheduler.pop_due(3)] == ["a", "b", "c"]

    def test_pop_due_leaves_future_events(self):
        scheduler = EventScheduler()
        scheduler.post(Ping(1))
        scheduler.post(Ping(9))
        assert len(scheduler.pop_due(4)) == 1
        assert len(scheduler) == 1
        assert scheduler.next_event_cycle == 9

    def test_empty_scheduler(self):
        scheduler = EventScheduler()
        assert scheduler.empty
        assert scheduler.next_event_cycle is None
        assert scheduler.pop_due(100) == []


class TestSimClock:
    def test_skip_mode_jumps(self):
        clock = SimClock()
        assert clock.advance(10) == 10
        assert clock.advance(10) == 11  # strictly monotonic

    def test_dense_mode_steps(self):
        clock = SimClock(dense=True)
        assert clock.advance(10) == 1
        assert clock.advance(10) == 2


class _Counter:
    """Ticks every `period` cycles until it has fired `limit` times."""

    def __init__(self, period=1, limit=5):
        self.period = period
        self.limit = limit
        self.fired = 0
        self.visited = []

    def tick(self, cycle):
        if self.fired < self.limit and cycle % self.period == 0:
            self.fired += 1
        self.visited.append(cycle)
        return ()

    @property
    def next_action_cycle(self):
        if self.fired >= self.limit:
            return None
        return self.visited[-1] + self.period if self.visited else 0


class TestSimulation:
    def test_runs_to_done(self):
        counter = _Counter(period=3, limit=4)
        final = Simulation(
            [counter],
            done=lambda sim: counter.fired >= 4,
            max_cycles=100,
        ).run()
        assert counter.fired == 4
        assert final == 9  # fires at 0, 3, 6, 9

    def test_skip_visits_only_interesting_cycles(self):
        counter = _Counter(period=5, limit=3)
        Simulation(
            [counter],
            done=lambda sim: counter.fired >= 3,
            max_cycles=100,
        ).run()
        assert counter.visited == [0, 5, 10]

    def test_dense_visits_every_cycle(self):
        counter = _Counter(period=5, limit=3)
        Simulation(
            [counter],
            done=lambda sim: counter.fired >= 3,
            max_cycles=100,
            dense=True,
        ).run()
        assert counter.visited == list(range(11))

    def test_watchdog_raises(self):
        counter = _Counter(period=1, limit=10**9)
        with pytest.raises(SchedulingError, match="exceeded"):
            Simulation(
                [counter],
                done=lambda sim: False,
                max_cycles=10,
                label="unit test",
            ).run()

    def test_deadlock_detected(self):
        counter = _Counter(limit=1)
        with pytest.raises(SchedulingError, match="deadlock"):
            Simulation(
                [counter],
                done=lambda sim: False,
                max_cycles=100,
            ).run()

    def test_background_component_cannot_mask_deadlock(self):
        class Engine:
            obs = None
            refreshes = 0

            def tick(self, cycle):
                return False

            @property
            def next_action_cycle(self):
                return 1000  # always has a pending action

        counter = _Counter(limit=1)
        with pytest.raises(SchedulingError, match="deadlock"):
            Simulation(
                [BackgroundComponent(Engine()), counter],
                done=lambda sim: False,
                max_cycles=10_000,
            ).run()

    def test_events_deliver_at_due_cycle(self):
        delivered = []

        class Producer:
            sent = False

            def tick(self, cycle):
                if not self.sent:
                    self.sent = True
                    return (Ping(7, "payload"),)
                return ()

            @property
            def next_action_cycle(self):
                return None if self.sent else 0

        producer = Producer()
        simulation = Simulation(
            [producer],
            done=lambda sim: producer.sent and sim.scheduler.empty,
            deliver=lambda event: delivered.append(event),
            max_cycles=100,
        )
        final = simulation.run()
        assert delivered == [Ping(7, "payload")]
        assert final == 7  # skipped straight to the event


class TestTransactionPump:
    def test_resumes_at_each_start(self):
        issued = []

        def steps():
            for start in (0, 4, 4, 20):
                yield start
                issued.append(start)

        pump = TransactionPump(steps())
        visited = []

        class Recorder:
            def tick(self, cycle):
                visited.append(cycle)
                return ()

            next_action_cycle = None

        Simulation(
            [Recorder(), pump],
            done=lambda sim: pump.done,
            max_cycles=100,
        ).run()
        assert issued == [0, 4, 4, 20]
        # Same-start transactions issue on consecutive visited cycles.
        assert visited == [0, 4, 5, 20]

    def test_done_immediately_for_empty_plan(self):
        pump = TransactionPump(iter(()))
        assert pump.done
        assert pump.next_action_cycle is None


class TestResultBuilder:
    def _builder(self):
        return ResultBuilder(
            kernel="daxpy",
            organization="test-org",
            length=64,
            stride=1,
            fifo_depth=16,
            alignment="staggered",
            policy="unit-test",
        )

    def test_note_first_data_keeps_earliest(self):
        builder = self._builder()
        builder.note_first_data(40)
        builder.note_first_data(10)
        assert builder.first_data == 40

    def test_note_data_end_keeps_latest(self):
        builder = self._builder()
        builder.note_data_end(10)
        builder.note_data_end(5)
        assert builder.last_data_end == 10

    def test_build_assembles_counters(self):
        builder = self._builder()
        builder.note_first_data(12)
        builder.packets_issued = 128
        builder.activations = 3
        result = builder.build(
            cycles=500, useful_bytes=1024, transferred_bytes=2048
        )
        assert result.startup_cycles == 12
        assert result.packets_issued == 128
        assert result.activations == 3
        assert result.cycles == 500
        assert result.kernel == "daxpy"

    def test_build_overrides_win(self):
        builder = self._builder()
        builder.packets_issued = 1
        result = builder.build(
            cycles=1,
            useful_bytes=1,
            transferred_bytes=1,
            packets_issued=99,
            cpu_stall_cycles=7,
        )
        assert result.packets_issued == 99
        assert result.cpu_stall_cycles == 7
