"""Tests for the Direct RDRAM device model (packet engine)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.rdram.device import RdramDevice, RdramGeometry
from repro.rdram.packets import BusDirection, RowCommand, RowPacket


class TestGeometry:
    def test_defaults_match_paper(self):
        g = RdramGeometry()
        assert g.num_banks == 8
        assert g.page_bytes == 1024
        assert g.packets_per_page == 64
        assert g.capacity_bytes == 8 * 1024 * 1024

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            RdramGeometry(num_banks=0)
        with pytest.raises(ConfigurationError):
            RdramGeometry(page_bytes=1000)  # not packet-aligned


class TestRowCommands:
    def test_act_at_requested_time(self, device):
        packet = device.issue_act(0, 5, 3)
        assert packet.start == 3
        assert packet.command is RowCommand.ACT
        assert device.bank(0).open_row == 5

    def test_t_rr_between_acts_on_device(self, device, timing):
        device.issue_act(0, 0, 0)
        second = device.issue_act(1, 0, 0)
        assert second.start == timing.t_rr

    def test_row_bus_occupancy_for_prer(self, device, timing):
        device.issue_act(0, 0, 0)
        device.issue_col(0, 0, 0, 0, BusDirection.READ)
        prer = device.issue_prer(0, 0)
        assert prer.start >= timing.t_ras
        # A following ACT cannot share the row bus with the PRER packet.
        act = device.issue_act(1, 0, prer.start)
        assert act.start >= prer.start + timing.t_pack

    def test_act_row_out_of_range(self, device):
        with pytest.raises(ProtocolError, match="row"):
            device.issue_act(0, 99999, 0)

    def test_bank_out_of_range(self, device):
        with pytest.raises(ProtocolError, match="bank"):
            device.issue_act(8, 0, 0)


class TestColumnCommands:
    def test_read_data_follows_col_by_cac_plus_rdly(self, device, timing):
        act = device.issue_act(0, 0, 0)
        access = device.issue_col(0, 0, 0, 0, BusDirection.READ)
        assert access.col.start == act.start + timing.t_rcd
        assert access.data.start == access.col.start + timing.t_cac + timing.t_rdly

    def test_write_data_follows_col_by_cac(self, device, timing):
        device.issue_act(0, 0, 0)
        access = device.issue_col(0, 0, 0, 0, BusDirection.WRITE)
        assert access.data.start == access.col.start + timing.t_cac

    def test_col_bus_serializes_packets(self, device, timing):
        device.issue_act(0, 0, 0)
        first = device.issue_col(0, 0, 0, 0, BusDirection.READ)
        second = device.issue_col(0, 0, 1, 0, BusDirection.READ)
        assert second.col.start == first.col.start + timing.t_pack
        assert second.data.start == first.data.start + timing.t_pack

    def test_column_out_of_range(self, device):
        device.issue_act(0, 0, 0)
        with pytest.raises(ProtocolError, match="column"):
            device.issue_col(0, 0, 64, 0, BusDirection.READ)

    def test_col_to_wrong_row_rejected(self, device):
        device.issue_act(0, 0, 0)
        with pytest.raises(ProtocolError, match="open row"):
            device.issue_col(0, 1, 0, 0, BusDirection.READ)


class TestTurnaround:
    def test_write_to_read_pays_t_rw(self, device, timing):
        device.issue_act(0, 0, 0)
        write = device.issue_col(0, 0, 0, 0, BusDirection.WRITE)
        read = device.issue_col(0, 0, 1, write.col.end, BusDirection.READ)
        assert read.data.start >= write.data.end + timing.t_rw

    def test_read_to_write_has_no_turnaround(self, device, timing):
        device.issue_act(0, 0, 0)
        read = device.issue_col(0, 0, 0, 0, BusDirection.READ)
        write = device.issue_col(0, 0, 1, read.col.end, BusDirection.WRITE)
        # Write data may start as soon as the data bus frees.
        assert write.data.start == read.data.end

    def test_back_to_back_reads_saturate_bus(self, device, timing):
        device.issue_act(0, 0, 0)
        previous = None
        for column in range(8):
            access = device.issue_col(0, 0, column, 0, BusDirection.READ)
            if previous is not None:
                assert access.data.start == previous.data.end
            previous = access


class TestColCarriedPrecharge:
    def test_precharge_flag_closes_bank(self, device):
        device.issue_act(0, 0, 0)
        device.issue_col(0, 0, 0, 0, BusDirection.READ, precharge=True)
        assert not device.bank(0).is_open

    def test_precharge_does_not_occupy_row_bus(self, device, timing):
        device.issue_act(0, 0, 0)
        device.issue_col(0, 0, 0, 0, BusDirection.READ, precharge=True)
        # The very next ACT elsewhere is limited only by t_RR, not by a
        # row-bus PRER packet.
        act = device.issue_act(1, 0, 0)
        assert act.start == timing.t_rr

    def test_precharge_trace_marks_via_col(self, device):
        device.issue_act(0, 0, 0)
        device.issue_col(0, 0, 0, 0, BusDirection.READ, precharge=True)
        prers = [
            p for p in device.trace
            if isinstance(p, RowPacket) and p.command is RowCommand.PRER
        ]
        assert len(prers) == 1
        assert prers[0].via_col


class TestAccounting:
    def test_bytes_transferred_counts_data_packets(self, device):
        device.issue_act(0, 0, 0)
        device.issue_col(0, 0, 0, 0, BusDirection.READ)
        device.issue_col(0, 0, 1, 0, BusDirection.WRITE)
        assert device.bytes_transferred == 32

    def test_trace_disabled(self, timing):
        device = RdramDevice(timing=timing, record_trace=False)
        device.issue_act(0, 0, 0)
        device.issue_col(0, 0, 0, 0, BusDirection.READ)
        assert device.trace == []
        assert device.bytes_transferred == 16

    def test_reset_restores_power_on_state(self, device):
        device.issue_act(0, 0, 0)
        device.issue_col(0, 0, 0, 0, BusDirection.READ)
        device.reset()
        assert device.bytes_transferred == 0
        assert device.trace == []
        assert not device.bank(0).is_open
        assert device.issue_act(0, 0, 0).start == 0

    def test_earliest_queries_do_not_mutate(self, device, timing):
        device.issue_act(0, 0, 0)
        before = device.earliest_col(0, 0, 0, BusDirection.READ)
        after = device.earliest_col(0, 0, 0, BusDirection.READ)
        assert before == after == timing.t_rcd
