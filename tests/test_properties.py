"""Property-based tests over randomized system configurations.

These drive whole simulations with hypothesis-chosen parameters and
assert the invariants that must hold for *any* legal configuration:
protocol legality of every packet trace, conservation of data, and
the analytic bounds' structural relationships.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analytic.smc import smc_bound
from repro.cache.controller import CachedNaturalOrderController
from repro.core.l2stream import L2StreamingController
from repro.core.smc import build_smc_system
from repro.cpu.kernels import KERNELS
from repro.cpu.streams import Alignment
from repro.memsys.config import MemorySystemConfig
from repro.naturalorder.controller import NaturalOrderController
from repro.naturalorder.random_driver import RandomAccessDriver
from repro.rdram.audit import audit_trace
from repro.sim.engine import run_smc

kernel_names = st.sampled_from(sorted(KERNELS))
orgs = st.sampled_from(["cli", "pi"])
alignments = st.sampled_from([Alignment.ALIGNED, Alignment.STAGGERED])
lengths = st.sampled_from([8, 16, 32, 64, 128])
depths = st.sampled_from([4, 8, 16, 32])
strides = st.sampled_from([1, 2, 3, 4, 5, 8, 16])
policies = st.sampled_from(["round-robin", "bank-aware", "speculative-precharge"])

sim_settings = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def config_for(org: str) -> MemorySystemConfig:
    return getattr(MemorySystemConfig, org)()


class TestSmcSimulationProperties:
    @given(
        kernel=kernel_names,
        org=orgs,
        alignment=alignments,
        length=lengths,
        depth=depths,
        stride=strides,
    )
    @sim_settings
    def test_every_smc_trace_is_protocol_legal(
        self, kernel, org, alignment, length, depth, stride
    ):
        from repro.sim.runner import resolve_policy

        config = config_for(org)
        system = build_smc_system(
            KERNELS[kernel],
            config,
            length=length,
            fifo_depth=depth,
            stride=stride,
            alignment=alignment,
            record_trace=True,
        )
        result = run_smc(system)
        audit_trace(
            system.device.trace,
            timing=config.timing,
            num_banks=config.geometry.num_banks,
        )
        # Conservation: exactly the planned packets moved.
        planned = sum(len(fifo.units) for fifo in system.sbu)
        assert result.packets_issued == planned
        assert result.transferred_bytes == planned * 16
        # Every stream element was consumed or produced exactly once.
        assert result.useful_bytes == (
            KERNELS[kernel].num_streams * length * 8
        )
        # Bandwidth is physical.
        assert 0 < result.percent_of_peak <= 100.0001

    @given(kernel=kernel_names, org=orgs, policy=policies)
    @sim_settings
    def test_policies_preserve_data_and_legality(self, kernel, org, policy):
        from repro.sim.runner import resolve_policy

        config = config_for(org)
        system = build_smc_system(
            KERNELS[kernel],
            config,
            length=64,
            fifo_depth=16,
            policy=resolve_policy(policy),
            record_trace=True,
        )
        result = run_smc(system)
        audit_trace(system.device.trace, config.timing)
        assert result.useful_bytes == KERNELS[kernel].num_streams * 64 * 8

    @given(
        kernel=kernel_names, org=orgs, length=lengths, depth=depths
    )
    @sim_settings
    def test_simulation_is_deterministic(self, kernel, org, length, depth):
        config = config_for(org)
        results = [
            run_smc(
                build_smc_system(
                    KERNELS[kernel], config, length=length, fifo_depth=depth
                )
            )
            for __ in range(2)
        ]
        assert results[0] == results[1]

    @given(
        kernel=kernel_names,
        org=orgs,
        alignment=alignments,
        length=st.sampled_from([8, 16, 32, 64]),
        depth=depths,
        stride=strides,
    )
    @sim_settings
    def test_cycle_skipping_is_exact(
        self, kernel, org, alignment, length, depth, stride
    ):
        """Skipping to the next interesting cycle must be observationally
        identical to visiting every cycle."""
        config = config_for(org)

        def build():
            return build_smc_system(
                KERNELS[kernel],
                config,
                length=length,
                fifo_depth=depth,
                stride=stride,
                alignment=alignment,
            )

        skipped = run_smc(build())
        stepped = run_smc(build(), dense=True)
        assert skipped == stepped


class TestKernelSkipEquivalence:
    """Dense-vs-skip exactness for every controller on the shared kernel.

    The simulation kernel promises that skipping to the next
    interesting cycle is observationally identical to visiting every
    cycle.  Each ported controller contributes its own skip contract
    (declared ``next_action_cycle`` values), so each gets its own
    equivalence property — with and without the background refresh
    engine perturbing device state between transactions.
    """

    @given(
        kernel=kernel_names,
        org=orgs,
        alignment=alignments,
        length=st.sampled_from([8, 16, 32]),
        stride=strides,
        refresh=st.booleans(),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_natural_order_skip_is_exact(
        self, kernel, org, alignment, length, stride, refresh
    ):
        def run(dense):
            controller = NaturalOrderController(
                config_for(org), refresh=refresh
            )
            return controller.run(
                KERNELS[kernel],
                length=length,
                stride=stride,
                alignment=alignment,
                dense=dense,
            )

        assert run(False) == run(True)

    @given(
        kernel=kernel_names,
        org=orgs,
        alignment=alignments,
        length=st.sampled_from([8, 16, 32]),
        stride=strides,
        refresh=st.booleans(),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_cached_natural_order_skip_is_exact(
        self, kernel, org, alignment, length, stride, refresh
    ):
        def run(dense):
            controller = CachedNaturalOrderController(
                config_for(org), refresh=refresh
            )
            return controller.run(
                KERNELS[kernel],
                length=length,
                stride=stride,
                alignment=alignment,
                dense=dense,
            )

        assert run(False) == run(True)

    @given(
        kernel=kernel_names,
        org=orgs,
        alignment=alignments,
        length=st.sampled_from([8, 16, 32]),
        stride=st.sampled_from([1, 2, 4]),
        window=st.sampled_from([2, 8]),
        refresh=st.booleans(),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_l2_streaming_skip_is_exact(
        self, kernel, org, alignment, length, stride, window, refresh
    ):
        def run(dense):
            controller = L2StreamingController(
                config_for(org), prefetch_window=window, refresh=refresh
            )
            return controller.run(
                KERNELS[kernel],
                length=length,
                stride=stride,
                alignment=alignment,
                dense=dense,
            )

        assert run(False) == run(True)

    @given(
        org=orgs,
        transactions=st.sampled_from([4, 16, 48]),
        write_fraction=st.sampled_from([0.0, 0.3, 1.0]),
        seed=st.integers(min_value=1, max_value=64),
        refresh=st.booleans(),
    )
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_driver_skip_is_exact(
        self, org, transactions, write_fraction, seed, refresh
    ):
        def run(dense):
            driver = RandomAccessDriver(config_for(org), refresh=refresh)
            return driver.run(
                transactions,
                write_fraction=write_fraction,
                seed=seed,
                dense=dense,
            )

        assert run(False) == run(True)

    @given(
        kernel=kernel_names,
        org=orgs,
        length=st.sampled_from([8, 16, 32]),
        depth=st.sampled_from([4, 16]),
    )
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_smc_skip_is_exact_with_refresh(self, kernel, org, length, depth):
        config = config_for(org)

        def build():
            return build_smc_system(
                KERNELS[kernel],
                config,
                length=length,
                fifo_depth=depth,
                refresh=True,
            )

        assert run_smc(build()) == run_smc(build(), dense=True)


class TestNaturalOrderProperties:
    @given(
        kernel=kernel_names,
        org=orgs,
        alignment=alignments,
        length=lengths,
        stride=strides,
    )
    @sim_settings
    def test_every_baseline_trace_is_protocol_legal(
        self, kernel, org, alignment, length, stride
    ):
        config = config_for(org)
        controller = NaturalOrderController(config, record_trace=True)
        result = controller.run(
            KERNELS[kernel], length=length, stride=stride, alignment=alignment
        )
        audit_trace(controller.device.trace, config.timing)
        # Whole cachelines move: transfers are a multiple of the line.
        assert result.transferred_bytes % config.cacheline_bytes == 0
        assert result.transferred_bytes >= result.useful_bytes * min(
            1, 4 // stride
        )


class TestBoundProperties:
    @given(
        org=orgs,
        s_r=st.integers(min_value=1, max_value=7),
        length=st.sampled_from([128, 512, 1024, 4096]),
        depth=st.sampled_from([4, 8, 16, 64, 128, 256]),
    )
    @settings(max_examples=80, deadline=None)
    def test_smc_bounds_are_consistent(self, org, s_r, length, depth):
        bound = smc_bound(config_for(org), s_r, 1, length, depth)
        assert 0 < bound.percent_combined_limit <= 100
        assert bound.percent_combined_limit <= bound.percent_startup_limit
        assert (
            bound.percent_combined_limit <= bound.percent_asymptotic_limit
        )
        assert bound.startup_delay >= 0
        assert bound.turnaround_delay >= 0
