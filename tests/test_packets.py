"""Tests for packet record types."""

from __future__ import annotations

from repro.rdram.packets import (
    BusDirection,
    ColCommand,
    ColPacket,
    DataPacket,
    RowCommand,
    RowPacket,
)


class TestPacketArithmetic:
    def test_row_packet_spans_four_cycles(self):
        packet = RowPacket(RowCommand.ACT, bank=0, row=5, start=12)
        assert packet.end == 16

    def test_col_packet_spans_four_cycles(self):
        packet = ColPacket(ColCommand.RD, bank=1, row=0, column=3, start=8)
        assert packet.end == 12

    def test_data_packet_links_source_col(self):
        packet = DataPacket(BusDirection.READ, bank=2, start=30, source_col_start=20)
        assert packet.end == 34
        assert packet.source_col_start == 20


class TestPacketSemantics:
    def test_prer_has_no_row(self):
        packet = RowPacket(RowCommand.PRER, bank=0, row=None, start=0)
        assert packet.row is None

    def test_via_col_defaults_false(self):
        packet = RowPacket(RowCommand.PRER, bank=0, row=None, start=0)
        assert not packet.via_col

    def test_command_vocabulary(self):
        assert {c.value for c in RowCommand} == {"ACT", "PRER"}
        assert {c.value for c in ColCommand} == {"RD", "WR", "RET"}
        assert {d.value for d in BusDirection} == {"read", "write"}

    def test_packets_are_hashable_values(self):
        a = RowPacket(RowCommand.ACT, bank=0, row=1, start=0)
        b = RowPacket(RowCommand.ACT, bank=0, row=1, start=0)
        assert a == b
        assert len({a, b}) == 1
