"""Smoke tests: every shipped example runs cleanly end to end.

The examples are the library's advertised entry points; each is run
as a subprocess (the way a user would) and its output spot-checked.
The slowest examples are trimmed via environment-independent
arguments where possible; all finish in seconds.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTED_SNIPPETS = {
    "quickstart.py": "SMC improvement over natural-order limit",
    "fifo_depth_tuning.py": "1024-element vectors",
    "scientific_strides.py": "CLI SMC",
    "multimedia_decode.py": "sustains ~",
    "custom_policy.py": "writes-last",
    "compile_your_loop.py": "rejected",
    "sparse_gather.py": "sparse, random",
    "dram_generations.py": "Direct RDRAM",
    "inspect_a_run.py": "protocol audit",
    "stall_attribution.py": "stall attribution",
}


def test_every_example_is_covered():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_SNIPPETS)


@pytest.mark.parametrize("script", sorted(EXPECTED_SNIPPETS))
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert EXPECTED_SNIPPETS[script] in completed.stdout
