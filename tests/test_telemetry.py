"""Tests for telemetry, the metrics registry, exporters, and sweep stats."""

from __future__ import annotations

import io
import json
import sys

import pytest

from repro.errors import ConfigurationError, ObservabilityError
from repro.core.smc import build_smc_system
from repro.cpu.kernels import get_kernel
from repro.memsys.config import MemorySystemConfig
from repro.naturalorder.controller import NaturalOrderController
from repro.obs import (
    BUCKETS,
    Instrumentation,
    attribute_stalls,
    classify_stall_intervals,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    load_metrics_jsonl,
    to_prometheus,
    write_metrics_csv,
    write_metrics_jsonl,
)
from repro.obs.metrics_cli import main as metrics_main
from repro.obs.telemetry import build_windowed_series
from repro.exec.pool import run_specs
from repro.exec.stats import SweepStats
from repro.sim.engine import run_smc
from repro.sim.runner import RunSpec, simulate


def run_instrumented(kernel="copy", org="cli", length=256, window=64):
    obs = Instrumentation(telemetry_window=window)
    system = build_smc_system(
        get_kernel(kernel),
        getattr(MemorySystemConfig, org)(),
        length=length,
        fifo_depth=32,
    )
    result = run_smc(system, obs=obs)
    return result, obs


# ---------------------------------------------------------------- registry


class TestMetricsRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("g") is registry.gauge("g")

    def test_labels_distinguish_metrics(self):
        registry = MetricsRegistry()
        a = registry.counter("stalls", bucket="fifo")
        b = registry.counter("stalls", bucket="refresh")
        assert a is not b
        a.inc()
        assert b.value == 0

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError):
            registry.gauge("x")

    def test_series_total_and_last(self):
        registry = MetricsRegistry()
        series = registry.series("s")
        series.sample(0, 1.0)
        series.sample(64, 2.0)
        assert series.values() == [1.0, 2.0]
        assert series.total() == 3.0
        assert series.last == 2.0


class TestHistogram:
    def test_bucket_counts_and_overflow(self):
        h = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 100.0):
            h.observe(value)
        assert h.count == 4
        assert h.bucket_counts == [1, 1, 1, 1]

    def test_percentiles_uniform(self):
        h = Histogram("h", bounds=tuple(float(i) for i in range(1, 101)))
        for value in range(1, 101):
            h.observe(float(value))
        # Interpolated quantiles land within one bucket of the exact rank.
        assert h.p50 == pytest.approx(50.0, abs=1.0)
        assert h.p90 == pytest.approx(90.0, abs=1.0)
        assert h.p99 == pytest.approx(99.0, abs=1.0)

    def test_quantile_bounds_and_empty(self):
        h = Histogram("h", bounds=(1.0, 2.0))
        assert h.quantile(0.5) == 0.0
        h.observe(1.5)
        assert h.quantile(0.0) <= h.quantile(1.0)

    def test_mean_min_max(self):
        h = Histogram("h", bounds=(10.0,))
        for value in (1.0, 2.0, 3.0):
            h.observe(value)
        assert h.mean == pytest.approx(2.0)
        assert h.min == 1.0
        assert h.max == 3.0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ObservabilityError):
            Histogram("h", bounds=(2.0, 1.0))

    def test_empty_percentiles_are_zero(self):
        h = Histogram("h", bounds=(1.0, 2.0))
        assert (h.p50, h.p90, h.p99) == (0.0, 0.0, 0.0)
        assert h.mean == 0.0
        assert h.min is None and h.max is None

    def test_single_sample(self):
        h = Histogram("h", bounds=(10.0, 20.0))
        h.observe(15.0)
        # Every percentile of a one-sample distribution is that
        # sample's bucket; interpolation must not escape it.
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            assert 10.0 <= h.quantile(q) <= 20.0
        assert h.min == h.max == 15.0

    def test_all_identical_samples(self):
        h = Histogram("h", bounds=(1.0, 4.0, 16.0))
        for _ in range(50):
            h.observe(4.0)
        assert 1.0 <= h.p50 <= 4.0
        assert 1.0 <= h.p99 <= 4.0
        assert h.mean == pytest.approx(4.0)

    def test_overflow_only_percentiles_use_observed_max(self):
        h = Histogram("h", bounds=(1.0,))
        h.observe(99.0)
        assert h.p50 == 99.0


# --------------------------------------------------------------- exporters


class TestExporters:
    def build_registry(self):
        registry = MetricsRegistry()
        registry.counter("hits", help="cache hits").inc(5)
        registry.gauge("depth", stream="x").set(3.0)
        h = registry.histogram("wall", bounds=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        s = registry.series("util")
        s.sample(0, 0.25)
        s.sample(64, 0.75)
        return registry

    def test_jsonl_round_trip_exact(self, tmp_path):
        registry = self.build_registry()
        path = tmp_path / "m.jsonl"
        count = write_metrics_jsonl(path, registry)
        assert count == len(registry)
        loaded = load_metrics_jsonl(path)
        assert loaded == registry

    def test_prometheus_text_format(self):
        text = to_prometheus(self.build_registry())
        assert "# TYPE repro_hits counter" in text
        assert "repro_hits 5" in text
        assert 'repro_depth{stream="x"} 3' in text
        assert "repro_wall_bucket" in text
        assert 'le="+Inf"' in text
        assert text.endswith("\n")

    def test_csv_export(self, tmp_path):
        path = tmp_path / "m.csv"
        count = write_metrics_csv(path, self.build_registry())
        lines = path.read_text().strip().splitlines()
        assert count == len(lines) - 1  # header row
        assert lines[0] == "metric,labels,t,value"

    def test_load_rejects_bad_file(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(ObservabilityError):
            load_metrics_jsonl(path)

    def test_labeled_histogram_jsonl_round_trip(self, tmp_path):
        registry = MetricsRegistry()
        for component in ("queue_wait", "transfer"):
            h = registry.histogram(
                "latency", bounds=(8.0, 64.0), component=component
            )
            h.observe(10.0)
            h.observe(100.0)
        registry.series("bytes", channel=0, bank=3).sample(0, 32.0)
        path = tmp_path / "m.jsonl"
        write_metrics_jsonl(path, registry)
        loaded = load_metrics_jsonl(path)
        assert loaded == registry
        clone = loaded.histogram(
            "latency", bounds=(8.0, 64.0), component="transfer"
        )
        assert clone.count == 2 and clone.sum == 110.0

    def test_prometheus_escapes_hostile_label_values(self):
        registry = MetricsRegistry()
        registry.counter(
            "c", path='back\\slash "quote"\nnewline'
        ).inc(1)
        text = to_prometheus(registry)
        line = next(
            l for l in text.splitlines()
            if l.startswith("repro_c{")
        )
        # One physical line, with the three specials escaped per the
        # text exposition format.
        assert line == (
            'repro_c{path="back\\\\slash \\"quote\\"\\nnewline"} 1'
        )


# --------------------------------------------------------------- telemetry


class TestTelemetryReconciliation:
    @pytest.mark.parametrize("window", [32, 64, 250])
    def test_windowed_stalls_sum_to_attribution(self, window):
        result, obs = run_instrumented(window=window)
        report = attribute_stalls(obs, cycles=result.cycles)
        for bucket in BUCKETS:
            series = obs.metrics.series(
                "telemetry.stall_cycles", bucket=bucket
            )
            assert series.total() == report.buckets[bucket], bucket
        busy = obs.metrics.series("telemetry.busy_cycles")
        assert busy.total() == report.busy

    def test_window_count_covers_run(self):
        result, obs = run_instrumented(window=64)
        busy = obs.metrics.series("telemetry.busy_cycles")
        expected = -(-result.cycles // 64)
        assert len(busy.samples) == expected
        # Samples are stamped at window starts: 0, 64, 128, ...
        assert [t for t, _ in busy.samples] == [
            64 * i for i in range(expected)
        ]

    def test_natural_order_controller_reconciles(self):
        obs = Instrumentation(telemetry_window=128)
        controller = NaturalOrderController(MemorySystemConfig.cli())
        result = controller.run(get_kernel("daxpy"), 256, obs=obs)
        report = attribute_stalls(obs, cycles=result.cycles)
        total_stall = sum(
            obs.metrics.series("telemetry.stall_cycles", bucket=b).total()
            for b in BUCKETS
        )
        assert total_stall == sum(report.buckets.values())

    def test_classify_intervals_match_buckets(self):
        result, obs = run_instrumented(window=64)
        report = attribute_stalls(obs, cycles=result.cycles)
        summed = {name: 0 for name in BUCKETS}
        for lo, hi, name in classify_stall_intervals(obs):
            summed[name] += hi - lo
        summed["drain"] = report.buckets["drain"]
        assert summed == report.buckets

    def test_utilization_and_bandwidth_series(self):
        _, obs = run_instrumented(window=64)
        util = obs.metrics.series("telemetry.data_bus_utilization")
        bw = obs.metrics.series("telemetry.effective_bandwidth_pct_peak")
        assert util.values(), "no utilization samples"
        assert all(0.0 <= v <= 1.0 for v in util.values())
        assert all(0.0 <= v <= 100.0 for v in bw.values())

    def test_fifo_and_bank_series_present(self):
        _, obs = run_instrumented(window=64)
        names = obs.metrics.names()
        assert "telemetry.fifo_occupancy" in names
        assert "telemetry.banks_open" in names
        assert "telemetry.bank_active_cycles" in names

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            Instrumentation(telemetry_window=0)
        with pytest.raises(ConfigurationError):
            RunSpec(kernel="copy", telemetry_window=-1)

    def test_build_windowed_series_needs_window(self):
        obs = Instrumentation()
        with pytest.raises(ConfigurationError):
            build_windowed_series(obs, cycles=128, last_data_end=100)


class TestTelemetryNeutrality:
    def test_attached_equals_detached_bit_for_bit(self):
        plain = simulate(RunSpec("daxpy", "cli", length=256))
        obs = Instrumentation(telemetry_window=64)
        watched = simulate(RunSpec("daxpy", "cli", length=256), obs=obs)
        assert watched.to_dict() == plain.to_dict()

    def test_spec_window_shares_cache_key(self):
        spec = RunSpec(kernel="copy", telemetry_window=64)
        bare = RunSpec(kernel="copy")
        assert spec.canonical_key() == bare.canonical_key()
        # ... but the window still survives serialization.
        assert RunSpec.from_dict(spec.to_dict()).telemetry_window == 64
        assert "telemetry_window" not in bare.to_dict()


# -------------------------------------------------------------- sweep stats


class TestSweepStats:
    def test_counts_and_summary(self):
        stats = SweepStats()
        stats.begin_batch(3, workers=1)
        stats.note_point(cached=True)
        stats.note_point(cached=False, wall_s=0.01)
        stats.note_point(cached=False, wall_s=0.02)
        stats.end_batch()
        assert stats.specs == 3
        assert stats.cache_hits == 1
        assert stats.cache_hit_rate == pytest.approx(1 / 3)
        summary = stats.summary()
        assert "3 specs" in summary
        assert "1 cache hits" in summary

    def test_progress_line_overwrites(self):
        buf = io.StringIO()
        stats = SweepStats(stream=buf)
        stats.begin_batch(2, workers=2)
        stats.note_point(cached=False, wall_s=0.01)
        stats.note_point(cached=False, wall_s=0.01)
        stats.end_batch()
        text = buf.getvalue()
        assert "sweep: 1/2 specs" in text
        assert "sweep: 2/2 specs" in text
        assert text.endswith("\r")  # line cleared at batch end

    def test_run_specs_reports_into_stats(self):
        stats = SweepStats()
        specs = [RunSpec(kernel="copy", length=64)] * 2
        run_specs(specs, stats=stats)
        assert stats.specs == 2
        assert stats.cache_hits == 0
        assert stats._wall.count == 2

    def test_run_specs_counts_cache_hits(self, tmp_path):
        from repro.exec.cache import ResultCache

        stats = SweepStats()
        cache = ResultCache(tmp_path)
        specs = [RunSpec(kernel="copy", length=64)]
        run_specs(specs, cache=cache, stats=stats)
        run_specs(specs, cache=cache, stats=stats)
        assert stats.specs == 2
        assert stats.cache_hits == 1


# ------------------------------------------------------------- metrics CLI


class TestMetricsCli:
    def write_file(self, tmp_path):
        registry = MetricsRegistry()
        s = registry.series("telemetry.data_bus_utilization")
        for i in range(8):
            s.sample(i * 64, i / 8)
        registry.counter("hits").inc(3)
        path = tmp_path / "m.jsonl"
        write_metrics_jsonl(path, registry)
        return path

    def test_list(self, tmp_path, capsys):
        path = self.write_file(tmp_path)
        assert metrics_main(["list", str(path)]) == 0
        out = capsys.readouterr().out
        assert "telemetry.data_bus_utilization" in out
        assert "8 samples" in out

    def test_dump_prometheus(self, tmp_path, capsys):
        path = self.write_file(tmp_path)
        assert metrics_main(["dump", str(path)]) == 0
        assert "repro_hits 3" in capsys.readouterr().out

    def test_plot_series(self, tmp_path, capsys):
        path = self.write_file(tmp_path)
        code = metrics_main(
            ["plot", str(path), "telemetry.data_bus_utilization"]
        )
        assert code == 0
        assert "8 samples" in capsys.readouterr().out

    def test_plot_unknown_metric_errors(self, tmp_path, capsys):
        path = self.write_file(tmp_path)
        assert metrics_main(["plot", str(path), "nope"]) == 1
        assert "known names" in capsys.readouterr().err

    def test_run_subcommand(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        code = metrics_main(
            ["run", "copy", "--length", "256", "--window", "64",
             "--out", str(out)]
        )
        assert code == 0
        registry = load_metrics_jsonl(out)
        assert "telemetry.busy_cycles" in registry.names()


# ------------------------------------------------------------ bench compare


class TestBenchCompare:
    def make_report(self, tmp_path, name, cps):
        report = {
            "schema": "bench-core/2",
            "results": [
                {
                    "controller": "smc",
                    "kernel": "copy",
                    "organization": "cli",
                    "cycles_per_second": cps,
                }
            ],
        }
        path = tmp_path / name
        path.write_text(json.dumps(report))
        return str(path)

    def test_within_tolerance_passes(self, tmp_path, capsys):
        sys.path.insert(0, "benchmarks")
        try:
            from bench_compare import main as compare_main
        finally:
            sys.path.pop(0)
        base = self.make_report(tmp_path, "base.json", 100_000)
        fresh = self.make_report(tmp_path, "fresh.json", 90_000)
        assert compare_main([base, fresh, "--tolerance", "0.25"]) == 0
        assert "OK: 1 points" in capsys.readouterr().out

    def test_regression_fails(self, tmp_path, capsys):
        sys.path.insert(0, "benchmarks")
        try:
            from bench_compare import main as compare_main
        finally:
            sys.path.pop(0)
        base = self.make_report(tmp_path, "base.json", 100_000)
        fresh = self.make_report(tmp_path, "fresh.json", 60_000)
        assert compare_main([base, fresh, "--tolerance", "0.25"]) == 1
        assert "REGRESSION" in capsys.readouterr().out
