"""Pinned bit-identity regression for the paper's two pairings.

``tests/data/pinned_paper_pairings.json`` was captured from the
simulator *before* the pluggable policy-layer refactor: every
:class:`~repro.sim.results.SimulationResult` field for the four paper
kernels on CLI+closed and PI+open, through both the SMC and the
natural-order controller.  The refactor moved the precharge decision
into the shared device access path, so these tests prove it changed
nothing the paper's numbers depend on — any drift in any field is a
behavioral regression, not noise.

The fixture intentionally predates the ``page_hits``/``page_misses``
result fields; only the fields present in the fixture are compared.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.cpu.kernels import PAPER_KERNELS
from repro.memsys.config import MemorySystemConfig
from repro.core.smc import build_smc_system
from repro.naturalorder.controller import NaturalOrderController
from repro.sim.engine import run_smc

LENGTH = 128
FIFO_DEPTH = 32

FIXTURE = Path(__file__).parent / "data" / "pinned_paper_pairings.json"

ORGS = {
    "cli": MemorySystemConfig.cli,
    "pi": MemorySystemConfig.pi,
}


@pytest.fixture(scope="module")
def pinned():
    return json.loads(FIXTURE.read_text())


@pytest.mark.parametrize("org", sorted(ORGS))
@pytest.mark.parametrize("kernel_name", sorted(PAPER_KERNELS))
class TestPinnedPairings:
    def test_smc_bit_identical(self, pinned, org, kernel_name):
        result = run_smc(
            build_smc_system(
                PAPER_KERNELS[kernel_name],
                ORGS[org](),
                length=LENGTH,
                fifo_depth=FIFO_DEPTH,
            )
        )
        got = dataclasses.asdict(result)
        want = pinned[f"smc/{org}/{kernel_name}"]
        mismatches = {
            field: (got[field], value)
            for field, value in want.items()
            if got[field] != value
        }
        assert not mismatches, mismatches

    def test_natural_order_bit_identical(self, pinned, org, kernel_name):
        result = NaturalOrderController(ORGS[org]()).run(
            PAPER_KERNELS[kernel_name], length=LENGTH
        )
        got = dataclasses.asdict(result)
        want = pinned[f"natural/{org}/{kernel_name}"]
        mismatches = {
            field: (got[field], value)
            for field, value in want.items()
            if got[field] != value
        }
        assert not mismatches, mismatches


def test_fixture_covers_the_full_matrix(pinned):
    expected = {
        f"{controller}/{org}/{kernel}"
        for controller in ("smc", "natural")
        for org in ORGS
        for kernel in PAPER_KERNELS
    }
    assert set(pinned) == expected
