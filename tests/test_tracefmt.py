"""Tests for the Gantt-style trace renderer."""

from __future__ import annotations

from repro.core.smc import build_smc_system
from repro.cpu.kernels import COPY, TRIAD
from repro.memsys.config import MemorySystemConfig
from repro.rdram.device import RdramDevice
from repro.rdram.packets import BusDirection
from repro.rdram.tracefmt import render_trace, render_trace_wrapped
from repro.sim.engine import run_smc


def traced_device():
    device = RdramDevice(record_trace=True)
    device.issue_act(0, 0, 0)
    device.issue_col(0, 0, 0, 0, BusDirection.READ)
    device.issue_col(0, 0, 1, 0, BusDirection.WRITE, precharge=True)
    return device


class TestRenderTrace:
    def test_lanes_present(self):
        text = render_trace(traced_device().trace)
        lines = text.splitlines()
        assert lines[0].startswith("cycle")
        assert [line.split()[0] for line in lines[1:]] == ["row", "col", "data"]

    def test_packets_drawn_at_their_cycles(self):
        text = render_trace(traced_device().trace)
        row_lane = text.splitlines()[1]
        col_lane = text.splitlines()[2]
        # ACT at cycle 0: the box starts right after the 6-char label.
        assert row_lane[6:9] == "[A0"
        # First COL RD at t_RCD = 11.
        assert col_lane[6 + 11 : 6 + 14] == "[R0"

    def test_read_and_write_data_marks(self):
        text = render_trace(traced_device().trace)
        data_lane = text.splitlines()[3]
        assert "<r0" in data_lane
        assert "<w0" in data_lane

    def test_via_col_precharge_in_parentheses(self):
        text = render_trace(traced_device().trace)
        assert "(P0)" in text.splitlines()[1]

    def test_window_clipping(self):
        device = traced_device()
        text = render_trace(device.trace, start=0, until=10)
        assert "[R0" not in text  # COL at 11 is outside the window

    def test_empty_trace(self):
        assert render_trace([]).splitlines()[0] == "cycle "

    def test_ruler_ticks(self):
        text = render_trace(traced_device().trace, ruler_step=10)
        assert "10" in text.splitlines()[0]


class TestWrapped:
    def test_bands_cover_whole_run(self):
        system = build_smc_system(
            COPY, MemorySystemConfig.cli(), length=32, fifo_depth=8,
            record_trace=True,
        )
        run_smc(system)
        text = render_trace_wrapped(system.device.trace, line_cycles=80)
        bands = text.split("\n\n")
        assert len(bands) >= 2
        for band in bands:
            assert band.splitlines()[0].startswith("cycle")

    def test_round_robin_conflict_gap_is_visible(self):
        """The Figure-7 round-robin deficiency appears as a command gap
        when the MSU waits out t_RC on a conflicting bank."""
        system = build_smc_system(
            TRIAD, MemorySystemConfig.cli(), length=32, fifo_depth=16,
            record_trace=True,
        )
        run_smc(system)
        text = render_trace(system.device.trace, until=70)
        col_lane = text.splitlines()[2]
        assert "    " * 2 in col_lane[40:]  # an 8+-cycle quiet stretch
