"""Tests for the benchmark kernels (Figure 4)."""

from __future__ import annotations

import pytest

from repro.errors import StreamError
from repro.cpu.kernels import (
    COPY,
    DAXPY,
    DOT,
    FILL,
    HYDRO,
    KERNELS,
    PAPER_KERNELS,
    SCALE,
    SWAP,
    TRIAD,
    VAXPY,
    Kernel,
    get_kernel,
)
from repro.cpu.streams import Direction, StreamSpec


class TestPaperKernels:
    def test_paper_suite_contents(self):
        assert set(PAPER_KERNELS) == {"copy", "daxpy", "hydro", "vaxpy"}

    @pytest.mark.parametrize(
        "kernel,s_r,s_w",
        [(COPY, 1, 1), (DAXPY, 2, 1), (HYDRO, 3, 1), (VAXPY, 3, 1)],
    )
    def test_stream_counts(self, kernel, s_r, s_w):
        assert kernel.num_read_streams == s_r
        assert kernel.num_write_streams == s_w
        assert kernel.num_streams == s_r + s_w

    def test_daxpy_y_is_read_modify_write(self):
        vectors = [s.vector for s in DAXPY.streams]
        assert vectors.count("y") == 2

    def test_vaxpy_reads_precede_write(self):
        directions = [s.direction for s in VAXPY.streams]
        assert directions == [
            Direction.READ, Direction.READ, Direction.READ, Direction.WRITE
        ]

    def test_hydro_models_two_zx_streams(self):
        names = [s.name for s in HYDRO.streams]
        assert "zx10" in names and "zx11" in names


class TestExtraKernels:
    def test_fill_is_write_only(self):
        assert FILL.num_read_streams == 0
        assert FILL.num_write_streams == 1

    def test_dot_is_read_only(self):
        assert DOT.num_write_streams == 0

    def test_scale_is_single_vector_rmw(self):
        assert {s.vector for s in SCALE.streams} == {"x"}

    def test_swap_has_two_rmw_vectors(self):
        assert SWAP.num_streams == 4
        assert {s.vector for s in SWAP.streams} == {"x", "y"}

    def test_triad_matches_figure5_shape(self):
        # The three-stream loop of Figures 5/6: rd, rd, wr.
        assert TRIAD.num_read_streams == 2
        assert TRIAD.num_write_streams == 1


class TestKernelMechanics:
    def test_access_order_is_natural(self):
        order = list(COPY.access_order(2))
        assert [(i, s.name) for i, s in order] == [
            (0, "x"), (0, "y"), (1, "x"), (1, "y")
        ]

    def test_get_kernel(self):
        assert get_kernel("daxpy") is DAXPY

    def test_get_kernel_unknown(self):
        with pytest.raises(StreamError, match="unknown kernel"):
            get_kernel("nope")

    def test_all_kernels_registered(self):
        assert set(PAPER_KERNELS) <= set(KERNELS)
        assert len(KERNELS) >= 9

    def test_duplicate_stream_names_rejected(self):
        with pytest.raises(StreamError, match="duplicate"):
            Kernel(
                name="bad",
                expression="",
                streams=(
                    StreamSpec("x", "x", Direction.READ),
                    StreamSpec("x", "x", Direction.WRITE),
                ),
            )

    def test_empty_kernel_rejected(self):
        with pytest.raises(StreamError, match="no streams"):
            Kernel(name="bad", expression="", streams=())

    def test_expressions_documented(self):
        for kernel in KERNELS.values():
            assert kernel.expression
