"""Tests for the Rambus-generation lineage model (Section 2.2)."""

from __future__ import annotations

import pytest

from repro.analytic.generations import GENERATIONS, RdramGeneration, generations_table
from repro.sim.runner import RunSpec, simulate


class TestPeaks:
    def test_base_and_concurrent_peak_500_to_600(self):
        """'...to deliver bandwidth of 500 to 600 Mbytes/sec.'"""
        for key in ("base", "concurrent"):
            peak = GENERATIONS[key].peak_bandwidth_bytes_per_sec
            assert 500e6 <= peak <= 600e6

    def test_direct_peak_1_6_gb(self):
        assert GENERATIONS["direct"].peak_bandwidth_bytes_per_sec == 1.6e9

    def test_direct_doubles_bus_and_raises_clock(self):
        """'...double the external data bus width from 8/9-bits to
        16/18-bits and increase the clock frequency from 250/300 MHz
        to 400 MHz.'"""
        base = GENERATIONS["base"]
        direct = GENERATIONS["direct"]
        assert direct.bus_bytes == 2 * base.bus_bytes
        assert direct.clock_mhz == 400


class TestSustainedModel:
    def test_efficiency_improves_across_generations(self):
        """'an improved protocol allows better bandwidth utilization'."""
        base = GENERATIONS["base"].efficiency
        concurrent = GENERATIONS["concurrent"].efficiency
        direct = GENERATIONS["direct"].efficiency
        assert base < concurrent < direct

    def test_direct_first_order_limit_brackets_simulator(self):
        """The first-order Direct figure is an upper bound the cycle
        simulator approaches from below."""
        model = GENERATIONS["direct"].sustained_stream_bandwidth()
        simulated = simulate(RunSpec(
            "copy", "cli", length=1024, fifo_depth=128
        )).effective_bandwidth_bytes_per_sec
        assert simulated <= model
        assert simulated > 0.9 * model

    def test_request_overhead_costs_bandwidth(self):
        with_overhead = RdramGeneration(
            "t", bus_bytes=1, clock_mhz=300, concurrent_transactions=2,
            request_overhead_bytes=8,
        )
        without = RdramGeneration(
            "t", bus_bytes=1, clock_mhz=300, concurrent_transactions=2,
            request_overhead_bytes=0,
        )
        assert (
            with_overhead.sustained_stream_bandwidth()
            < without.sustained_stream_bandwidth()
        )

    def test_serial_protocol_exposes_full_latency(self):
        serial = RdramGeneration(
            "t", bus_bytes=2, clock_mhz=400, concurrent_transactions=1
        )
        # 32 B / (20 ns transfer + 50 ns latency).
        assert serial.sustained_stream_bandwidth() == pytest.approx(
            32 / 70e-9, rel=1e-6
        )


class TestTable:
    def test_rows_in_lineage_order(self):
        table = generations_table()
        assert [row[0] for row in table.rows] == [
            "Base RDRAM", "Concurrent RDRAM", "Direct RDRAM"
        ]
        efficiencies = [row[5] for row in table.rows]
        assert efficiencies == sorted(efficiencies)
