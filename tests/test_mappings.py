"""Property tests for the address-mapping registry.

Every registered :class:`~repro.memsys.address.AddressMapping` must be
a byte-exact bijection between addresses and (bank, row, column)
locations on *any* legal geometry — including odd bank counts and
double-bank cores with their even/odd bank permutation.  These are
properties of the mapping contract, not of the two paper maps, so new
registrations are covered automatically.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.memsys.address import (
    MAPPINGS,
    AddressMapping,
    get_address_mapping,
    list_mappings,
    register_mapping,
)
from repro.memsys.config import MemorySystemConfig
from repro.rdram.device import RdramGeometry


@st.composite
def mapped_addresses(draw):
    """A (mapping, config, address) triple over random geometries."""
    num_banks = draw(st.integers(min_value=1, max_value=16))
    doubled = draw(st.booleans()) if num_banks >= 2 else False
    geometry = RdramGeometry(
        num_banks=num_banks,
        page_bytes=draw(st.sampled_from((256, 512, 1024, 2048))),
        rows_per_bank=draw(st.integers(min_value=2, max_value=32)),
        doubled_banks=doubled,
    )
    name = draw(st.sampled_from(list_mappings()))
    config = MemorySystemConfig(
        geometry=geometry, interleaving=name, page_policy="open"
    )
    mapping = get_address_mapping(config)
    address = draw(
        st.integers(min_value=0, max_value=mapping.capacity_bytes - 1)
    )
    return mapping, address


class TestBijectionProperties:
    @given(mapped_addresses())
    @settings(max_examples=300)
    def test_round_trip_is_byte_exact(self, case):
        mapping, address = case
        location = mapping.decompose(address)
        assert mapping.compose(location, address % 16) == address
        assert mapping.compose(location) == address - address % 16

    @given(mapped_addresses())
    @settings(max_examples=300)
    def test_locations_stay_in_range(self, case):
        mapping, address = case
        geometry = mapping.config.geometry
        location = mapping.decompose(address)
        assert 0 <= location.bank < geometry.num_banks
        assert 0 <= location.row < geometry.rows_per_bank
        assert 0 <= location.column < geometry.page_bytes // 16

    @pytest.mark.parametrize("num_banks", (1, 3, 4, 8))
    @pytest.mark.parametrize("name", sorted(MAPPINGS))
    def test_full_coverage_on_a_small_device(self, name, num_banks):
        # Exhaustively: every packet address maps to a distinct
        # location and composes back — an exact bijection.
        geometry = RdramGeometry(
            num_banks=num_banks, page_bytes=256, rows_per_bank=4
        )
        mapping = get_address_mapping(
            MemorySystemConfig(
                geometry=geometry, interleaving=name, page_policy="open"
            )
        )
        seen = set()
        for address in range(0, mapping.capacity_bytes, 16):
            location = mapping.decompose(address)
            key = (location.bank, location.row, location.column)
            assert key not in seen
            seen.add(key)
            assert mapping.compose(location) == address
        assert len(seen) == mapping.capacity_bytes // 16


class TestDoubledBankPermutation:
    def test_consecutive_lines_visit_evens_then_odds(self):
        config = MemorySystemConfig.cli(
            geometry=RdramGeometry(num_banks=16, doubled_banks=True)
        )
        mapping = get_address_mapping(config)
        line = config.cacheline_bytes
        banks = [mapping.bank_of(i * line) for i in range(16)]
        assert banks == [0, 2, 4, 6, 8, 10, 12, 14, 1, 3, 5, 7, 9, 11, 13, 15]

    @given(st.sampled_from(sorted(MAPPINGS)))
    def test_doubled_permutation_keeps_the_bijection(self, name):
        geometry = RdramGeometry(
            num_banks=6, page_bytes=256, rows_per_bank=4, doubled_banks=True
        )
        mapping = get_address_mapping(
            MemorySystemConfig(
                geometry=geometry, interleaving=name, page_policy="open"
            )
        )
        addresses = {
            mapping.compose(mapping.decompose(address))
            for address in range(0, mapping.capacity_bytes, 16)
        }
        assert len(addresses) == mapping.capacity_bytes // 16


class TestSwizzle:
    def test_vertically_aligned_pages_spread_over_all_banks(self):
        # Pages exactly one bank-rotation apart collide in one bank
        # under PI; the swizzle's row-dependent twist spreads them.
        pi = get_address_mapping(MemorySystemConfig.pi())
        config = MemorySystemConfig.pi(interleaving="swizzle")
        swizzle = get_address_mapping(config)
        geometry = config.geometry
        rotation = geometry.num_banks * geometry.page_bytes
        addresses = [row * rotation for row in range(geometry.num_banks)]
        assert len({pi.bank_of(a) for a in addresses}) == 1
        assert (
            len({swizzle.bank_of(a) for a in addresses})
            == geometry.num_banks
        )


class TestRegistry:
    def test_unknown_mapping_lists_registered_names(self):
        config = MemorySystemConfig(interleaving="zorp", page_policy="open")
        with pytest.raises(ConfigurationError) as err:
            get_address_mapping(config)
        for name in list_mappings():
            assert name in str(err.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="registered twice"):

            @register_mapping
            class Duplicate(AddressMapping):
                name = "cli"

    def test_default_name_rejected(self):
        with pytest.raises(ConfigurationError, match="non-default name"):

            @register_mapping
            class Unnamed(AddressMapping):
                pass
