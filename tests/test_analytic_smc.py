"""Tests for the SMC analytic bounds (Section 5.2)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.analytic.smc import smc_bound
from repro.memsys.config import MemorySystemConfig


@pytest.fixture
def cli():
    return MemorySystemConfig.cli()


@pytest.fixture
def pi():
    return MemorySystemConfig.pi()


class TestStartupBound:
    def test_copy_startup_is_t_rac_only_cli(self, cli):
        bound = smc_bound(cli, 1, 1, 1024, 64)
        assert bound.startup_delay == cli.timing.t_rac

    def test_copy_startup_adds_t_rp_on_pi(self, pi):
        bound = smc_bound(pi, 1, 1, 1024, 64)
        assert bound.startup_delay == pi.timing.t_rac + pi.timing.t_rp

    def test_startup_grows_with_depth_and_readers(self, cli):
        shallow = smc_bound(cli, 3, 1, 1024, 8).startup_delay
        deep = smc_bound(cli, 3, 1, 1024, 128).startup_delay
        assert deep > shallow

    def test_copy_startup_limit_flat_in_depth(self, cli):
        # Section 6: for copy the startup bound does not decrease with
        # FIFO depth (a single read stream).
        limits = {
            smc_bound(cli, 1, 1, 128, f).percent_startup_limit
            for f in (8, 16, 32, 64, 128)
        }
        assert len(limits) == 1

    def test_short_vectors_hurt_more(self, cli):
        short = smc_bound(cli, 3, 1, 128, 128).percent_startup_limit
        long = smc_bound(cli, 3, 1, 1024, 128).percent_startup_limit
        assert short < long


class TestAsymptoticBound:
    def test_rises_with_depth(self, cli):
        values = [
            smc_bound(cli, 2, 1, 1024, f).percent_asymptotic_limit
            for f in (8, 16, 32, 64, 128)
        ]
        assert values == sorted(values)

    def test_approaches_peak(self, cli):
        assert smc_bound(cli, 2, 1, 4096, 512).percent_asymptotic_limit > 99

    def test_read_only_loop_has_no_turnaround(self, pi):
        bound = smc_bound(pi, 2, 0, 1024, 16)
        assert bound.turnaround_delay == 0.0
        assert bound.percent_asymptotic_limit == 100.0

    def test_write_only_loop_has_no_turnaround(self, cli):
        assert smc_bound(cli, 0, 1, 1024, 16).turnaround_delay == 0.0


class TestCombinedBound:
    def test_combined_below_both_components(self, pi):
        bound = smc_bound(pi, 3, 1, 1024, 32)
        assert bound.percent_combined_limit <= bound.percent_startup_limit
        assert bound.percent_combined_limit <= bound.percent_asymptotic_limit

    def test_rise_then_fall_for_short_vectors(self, cli):
        # The Figure 7 shape for 128-element multi-read kernels.
        values = [
            smc_bound(cli, 3, 1, 128, f).percent_combined_limit
            for f in (8, 16, 32, 64, 128)
        ]
        peak_index = values.index(max(values))
        assert 0 < peak_index < len(values) - 1

    def test_long_vectors_keep_rising_to_deep_fifos(self, cli):
        values = [
            smc_bound(cli, 1, 1, 1024, f).percent_combined_limit
            for f in (8, 16, 32, 64, 128)
        ]
        assert values == sorted(values)

    def test_invalid_arguments(self, cli):
        with pytest.raises(ConfigurationError):
            smc_bound(cli, 1, 1, 0, 8)
        with pytest.raises(ConfigurationError):
            smc_bound(cli, 1, 1, 1024, 0)

    def test_copy_1024_deep_fifo_above_98(self, cli):
        # Consistent with "the SMC exploits over 98% of the system's
        # peak bandwidth" for 1024-element copy.
        assert smc_bound(cli, 1, 1, 1024, 128).percent_combined_limit > 98
