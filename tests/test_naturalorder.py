"""Tests for the natural-order cacheline controller baseline."""

from __future__ import annotations

import pytest

from repro.analytic.cache import natural_order_bound
from repro.cpu.kernels import COPY, DAXPY, PAPER_KERNELS, TRIAD, VAXPY, get_kernel
from repro.memsys.config import MemorySystemConfig
from repro.naturalorder.controller import MAX_OUTSTANDING, NaturalOrderController
from repro.rdram.audit import audit_trace
from repro.rdram.packets import RowCommand, RowPacket


class TestBasics:
    def test_result_metadata(self, cli_config):
        result = NaturalOrderController(cli_config).run(COPY, length=64)
        assert result.policy == "natural-order"
        assert result.fifo_depth == 0
        assert result.useful_bytes == 2 * 64 * 8

    def test_whole_lines_move_on_the_bus(self, cli_config):
        result = NaturalOrderController(cli_config).run(COPY, length=64)
        # Unit stride: transfers equal useful bytes (dense lines).
        assert result.transferred_bytes == result.useful_bytes

    def test_strided_run_moves_whole_lines(self, cli_config):
        result = NaturalOrderController(cli_config).run(COPY, length=64, stride=8)
        # Every element is its own line: 32 bytes moved per 8 useful.
        assert result.transferred_bytes == 4 * result.useful_bytes

    def test_trace_audits_clean(self, pi_config):
        controller = NaturalOrderController(pi_config, record_trace=True)
        controller.run(VAXPY, length=128)
        audit_trace(controller.device.trace, pi_config.timing)

    def test_trace_audits_clean_cli(self, cli_config):
        controller = NaturalOrderController(cli_config, record_trace=True)
        controller.run(DAXPY, length=128)
        audit_trace(controller.device.trace, cli_config.timing)

    def test_outstanding_constant(self):
        assert MAX_OUTSTANDING == 4

    def test_reuses_device_across_runs(self, cli_config):
        controller = NaturalOrderController(cli_config)
        first = controller.run(COPY, length=64)
        second = controller.run(COPY, length=64)
        assert first == second


class TestFigure5Timing:
    def test_load_acts_spaced_by_t_rr(self, cli_config):
        controller = NaturalOrderController(cli_config, record_trace=True)
        controller.run(TRIAD, length=32)
        acts = [
            p.start for p in controller.device.trace
            if isinstance(p, RowPacket) and p.command is RowCommand.ACT
        ]
        # The two loads of iteration 0 activate t_RR apart (Figure 5).
        assert acts[1] - acts[0] == cli_config.timing.t_rr

    def test_dependent_store_waits_t_rac(self, cli_config):
        controller = NaturalOrderController(cli_config, record_trace=True)
        controller.run(TRIAD, length=32)
        acts = [
            p.start for p in controller.device.trace
            if isinstance(p, RowPacket) and p.command is RowCommand.ACT
        ]
        # The store's ACT launches t_RAC after the last load's ACT
        # (linefill forwarding: first data arrives then).
        assert acts[2] - acts[1] >= cli_config.timing.t_rac


class TestAgainstAnalyticBounds:
    @pytest.mark.parametrize("org", ["cli", "pi"])
    @pytest.mark.parametrize("kernel_name", list(PAPER_KERNELS))
    def test_simulation_tracks_bound(self, org, kernel_name):
        """The simulated baseline lands within 25% of the reconciled
        analytic bound for every paper kernel and organization."""
        config = getattr(MemorySystemConfig, org)()
        kernel = get_kernel(kernel_name)
        result = NaturalOrderController(config).run(kernel, length=1024)
        bound = natural_order_bound(
            config, kernel.num_read_streams, kernel.num_write_streams
        ).percent_of_peak
        assert result.percent_of_peak == pytest.approx(bound, rel=0.25)

    def test_pi_beats_cli_for_streaming(self):
        """Section 6: PI delivers higher effective stream bandwidth."""
        for kernel_name in PAPER_KERNELS:
            kernel = get_kernel(kernel_name)
            cli = NaturalOrderController(MemorySystemConfig.cli()).run(kernel, length=1024)
            pi = NaturalOrderController(MemorySystemConfig.pi()).run(kernel, length=1024)
            assert pi.percent_of_peak > cli.percent_of_peak

    def test_large_strides_collapse_bandwidth(self, cli_config):
        unit = NaturalOrderController(cli_config).run(COPY, length=512, stride=1)
        sparse = NaturalOrderController(cli_config).run(COPY, length=512, stride=8)
        assert sparse.percent_of_peak < unit.percent_of_peak / 3

    def test_more_streams_use_more_bandwidth(self):
        """Section 6: maximum effective bandwidth increases with the
        number of streams in the computation."""
        config = MemorySystemConfig.pi()
        copy = NaturalOrderController(config).run(COPY, length=1024)
        vaxpy = NaturalOrderController(config).run(VAXPY, length=1024)
        assert vaxpy.percent_of_peak > copy.percent_of_peak
