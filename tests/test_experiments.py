"""Tests for the experiment harness (tables, figures, CLI)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments import figure7, figure8, figure9, headline, tables, timelines
from repro.experiments.cli import EXPERIMENTS, collect, main
from repro.experiments.registry import get_experiment, list_experiments
from repro.experiments.rendering import ExperimentTable, render_all


class TestRendering:
    def test_table_renders_title_and_rows(self):
        table = ExperimentTable("T", ("a", "b"))
        table.add_row(1, 2.5)
        text = table.render()
        assert "== T ==" in text
        assert "2.50" in text

    def test_csv(self):
        table = ExperimentTable("T", ("a", "b"))
        table.add_row(1, None)
        assert table.to_csv() == "a,b\n1,\n"

    def test_notes_rendered(self):
        table = ExperimentTable("T", ("a",), notes=["caveat"])
        assert "note: caveat" in table.render()

    def test_render_all_joins(self):
        tables_ = [ExperimentTable("A", ("x",)), ExperimentTable("B", ("y",))]
        text = render_all(tables_)
        assert "== A ==" in text and "== B ==" in text


class TestStaticTables:
    def test_figure1_rows(self):
        table = tables.figure1_table()
        assert len(table.rows) == 5
        names = [row[0] for row in table.rows]
        assert names[-1] == "Direct RDRAM"
        # Peak bandwidth column recovers 1600 MB/s for Direct RDRAM.
        assert table.rows[-1][-1] == 1600

    def test_figure2_rows(self):
        table = tables.figure2_table()
        assert len(table.rows) == 11
        by_name = {row[0]: row for row in table.rows}
        assert by_name["t_RAC"][2] == 20


class TestTimelines:
    def test_cli_timeline_act_spacing(self):
        timeline = timelines.three_stream_timeline("cli")
        # The figure's claim: successive load ACTs t_RR apart.
        assert timeline.act_spacings[0] == 8

    def test_pi_timeline_renders(self):
        timeline = timelines.three_stream_timeline("pi")
        assert "Figure 6" in timeline.table.title
        assert timeline.table.rows


class TestFigure7:
    def test_single_panel_structure(self):
        panel = figure7.run_panel(
            figure7.get_kernel("copy"), "cli", 128, depths=(8, 32)
        )
        assert panel.kernel == "copy"
        assert len(panel.table.rows) == 2
        depth, cache, combined, staggered, aligned = panel.table.rows[0]
        assert depth == 8
        assert 0 < cache < 100
        assert 0 < staggered <= 100

    def test_run_subset(self):
        panels = figure7.run(
            kernels=("copy",), organizations=("pi",), lengths=(128,),
            depths=(16,),
        )
        assert len(panels) == 1

    def test_default_dimensions(self):
        assert figure7.DEPTHS == (8, 16, 32, 64, 128)
        assert figure7.LENGTHS == (128, 1024)


class TestFigure8:
    def test_full_stride_axis(self):
        table = figure8.run()
        assert [row[0] for row in table.rows] == list(range(1, 33))

    def test_cli_flat_beyond_cacheline(self):
        table = figure8.run()
        tail = [row[1] for row in table.rows[3:]]
        assert all(v == pytest.approx(8.33, abs=0.01) for v in tail)


class TestFigure9:
    def test_small_run(self):
        table = figure9.run(strides=(4, 16), length=256, fifo_depth=32)
        assert len(table.rows) == 2
        for row in table.rows:
            assert all(0 <= value <= 100.0001 for value in row[1:])

    def test_cache_series_flat_beyond_line(self):
        table = figure9.run(strides=(8, 24), length=256, fifo_depth=32)
        assert table.rows[0][3] == table.rows[1][3]
        assert table.rows[0][4] == table.rows[1][4]


class TestHeadline:
    def test_tables_produced(self):
        results = headline.run()
        assert len(results) == 4
        bounds = results[0]
        # Paper vs ours for the four quoted bound values.
        for row in bounds.rows:
            assert row[2] == pytest.approx(row[1], abs=0.5)


class TestExtensionExperiments:
    def test_refresh_table_structure(self):
        from repro.experiments.refresh_ablation import run as run_refresh

        table = run_refresh(kernels=("copy",))
        assert len(table.rows) == 2
        for row in table.rows:
            assert row[5] > 0  # refreshes happened

    def test_doublebank_table_structure(self):
        from repro.experiments.doublebank import run as run_doublebank

        table = run_doublebank(kernels=("copy",))
        assert len(table.rows) == 2
        assert table.headers[2:] == (
            "8 independent", "16 double-bank", "16 independent"
        )

    def test_channel_table_structure(self):
        from repro.experiments.channel import run as run_channel

        table = run_channel(device_counts=(1, 2), transactions=200)
        assert [row[0] for row in table.rows] == [1, 2]
        assert table.rows[1][1] > table.rows[0][1]

    def test_cache_reality_tables(self):
        from repro.experiments.cache_reality import run as run_cache

        stride1, stride4 = run_cache(kernels=("copy",))
        assert "stride 1" in stride1.title
        assert "stride 4" in stride4.title
        for table in (stride1, stride4):
            assert len(table.rows) == 2

    def test_figure9_includes_smc_bound_column(self):
        table = figure9.run(strides=(4,), length=256, fifo_depth=32)
        assert table.headers[-1] == "SMC bound %"
        assert 0 < table.rows[0][-1] <= 100


class TestRegistry:
    def test_lists_every_experiment_in_paper_order(self):
        names = list_experiments()
        assert names[:3] == ["figure1", "figure2", "timelines"]
        assert set(names) == {
            "figure1", "figure2", "timelines", "figure7", "figure8",
            "figure9", "headline", "channel", "refresh", "doublebank",
            "cache", "l2", "fpm", "multi_client", "policy_matrix",
            "policy_search",
        }

    def test_cli_default_list_comes_from_registry(self):
        assert EXPERIMENTS == tuple(list_experiments())

    def test_get_experiment_builds_named_tables(self):
        experiment = get_experiment("figure8")
        assert experiment.name == "figure8"
        assert experiment.description
        (slug, table), = experiment.build()
        assert slug == "figure8"
        assert isinstance(table, ExperimentTable)

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            get_experiment("figure99")

    def test_registry_and_collect_agree(self):
        assert collect(["figure2"]) == get_experiment("figure2").build()


class TestCli:
    def test_collect_static(self):
        results = collect(["figure1", "figure2"])
        assert [slug for slug, __ in results] == ["figure1", "figure2"]

    def test_collect_extensions(self):
        results = collect(["refresh"])
        assert results[0][0] == "refresh"

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            collect(["figure99"])

    def test_main_writes_csv(self, tmp_path, capsys):
        assert main(["figure1", "--csv-dir", str(tmp_path)]) == 0
        assert (tmp_path / "figure1.csv").exists()
        captured = capsys.readouterr()
        assert "Figure 1" in captured.out
