"""Ablation: access order for indexed (gather) streams.

Beyond the paper's affine streams: the same order-determines-bandwidth
result on irregular access, motivated by the paper's Impulse
discussion.  Each bench gathers the same 1024 elements under a
different index ordering.
"""

from __future__ import annotations

import random

import pytest

from repro.core.gather import simulate_gather
from repro.memsys.config import MemorySystemConfig

N = 1024
UNIVERSE = 8 * N


def patterns():
    rng = random.Random(2024)
    return {
        "dense": list(range(N)),
        "sorted-sparse": sorted(rng.sample(range(UNIVERSE), N)),
        "random-sparse": rng.sample(range(UNIVERSE), N),
    }


@pytest.mark.parametrize("pattern", sorted(patterns()))
@pytest.mark.parametrize("org", ["cli", "pi"])
def test_gather_ordering(benchmark, org, pattern):
    indices = patterns()[pattern]
    config = getattr(MemorySystemConfig, org)()
    result = benchmark.pedantic(
        simulate_gather,
        args=(indices, config),
        kwargs=dict(fifo_depth=64),
        rounds=1,
        iterations=1,
    )
    assert 0 < result.percent_of_peak <= 100


def test_order_gap_is_large(benchmark):
    """Dense vs random-sparse differ by >2.5x on PI."""

    def both():
        config = MemorySystemConfig.pi()
        dense = simulate_gather(patterns()["dense"], config, fifo_depth=64)
        scattered = simulate_gather(
            patterns()["random-sparse"], config, fifo_depth=64
        )
        return dense, scattered

    dense, scattered = benchmark.pedantic(both, rounds=1, iterations=1)
    assert dense.percent_of_peak > 2.5 * scattered.percent_of_peak
