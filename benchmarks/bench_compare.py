#!/usr/bin/env python
"""Diff a fresh ``BENCH_core.json`` against the committed baseline.

Matches points by (controller, kernel, organization, engine,
topology) and compares ``cycles_per_second``.  Points from older files
without an ``engine`` field are treated as ``event``, and points
without a ``topology`` field as the single-channel ``1x1`` system, so
the batch fast path is never silently diffed against the discrete-event
kernel and multi-channel points never diff against single-channel
baselines.  Wall-clock benchmarks on shared CI runners are
noisy, so the gate is a tolerance band, not an equality check: the
exit status is non-zero only when at least one point is slower than
``baseline * (1 - tolerance)``.  Speedups and missing/new points are
reported but never fail the gate (regenerate the committed baseline
when the matrix changes).

Usage::

    PYTHONPATH=src python benchmarks/bench_baseline.py --output fresh.json
    python benchmarks/bench_compare.py BENCH_core.json fresh.json \
        [--tolerance 0.25]
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Tuple

#: Identity of one benchmark point across runs:
#: (controller, kernel, organization, engine, topology).
PointKey = Tuple[str, str, str, str, str]

#: Default slowdown band: fail only below 75% of baseline throughput.
DEFAULT_TOLERANCE = 0.25


def load_points(path: str) -> Dict[PointKey, dict]:
    """Read bench-core JSON into {(controller, kernel, org, engine, topo): point}."""
    with open(path, encoding="utf-8") as handle:
        report = json.load(handle)
    points: Dict[PointKey, dict] = {}
    for point in report.get("results", []):
        key = (
            str(point.get("controller", "?")),
            str(point.get("kernel", "?")),
            str(point.get("organization", "?")),
            str(point.get("engine", "event")),
            str(point.get("topology", "1x1")),
        )
        points[key] = point
    return points


def compare(
    baseline: Dict[PointKey, dict],
    fresh: Dict[PointKey, dict],
    tolerance: float,
) -> Tuple[List[str], List[str]]:
    """Return (report lines, regression lines) for the shared points."""
    lines: List[str] = []
    regressions: List[str] = []
    header = (
        f"{'controller':22s} {'kernel':8s} {'org':4s} {'engine':6s} "
        f"{'topo':5s} "
        f"{'baseline':>12s} {'fresh':>12s} {'ratio':>7s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for key in sorted(baseline):
        if key not in fresh:
            lines.append(
                f"{key[0]:22s} {key[1]:8s} {key[2]:4s} {key[3]:6s} "
                f"{key[4]:5s} "
                f"{'':>12s} {'(missing)':>12s}"
            )
            continue
        base_cps = baseline[key].get("cycles_per_second")
        new_cps = fresh[key].get("cycles_per_second")
        if not base_cps or not new_cps:
            continue
        ratio = new_cps / base_cps
        flag = ""
        if ratio < 1.0 - tolerance:
            flag = "  << REGRESSION"
            regressions.append(
                f"{'/'.join(key)}: {new_cps:,} cyc/s vs baseline "
                f"{base_cps:,} ({ratio:.2f}x, tolerance {1 - tolerance:.2f}x)"
            )
        lines.append(
            f"{key[0]:22s} {key[1]:8s} {key[2]:4s} {key[3]:6s} "
            f"{key[4]:5s} "
            f"{base_cps:>12,} {new_cps:>12,} {ratio:>6.2f}x{flag}"
        )
    for key in sorted(set(fresh) - set(baseline)):
        lines.append(
            f"{key[0]:22s} {key[1]:8s} {key[2]:4s} {key[3]:6s} "
            f"{key[4]:5s} "
            f"{'(new)':>12s} "
            f"{fresh[key].get('cycles_per_second') or 0:>12,}"
        )
    return lines, regressions


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_core.json")
    parser.add_argument("fresh", help="freshly generated bench JSON")
    parser.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE, metavar="F",
        help="allowed fractional slowdown before failing "
             f"(default {DEFAULT_TOLERANCE})",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error(f"--tolerance must be in [0, 1), got {args.tolerance}")

    try:
        baseline = load_points(args.baseline)
        fresh = load_points(args.fresh)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    lines, regressions = compare(baseline, fresh, args.tolerance)
    try:
        print("\n".join(lines))
    except BrokenPipeError:
        return 0
    shared = len(set(baseline) & set(fresh))
    if regressions:
        print(
            f"\n{len(regressions)} of {shared} points regressed beyond "
            f"{args.tolerance:.0%}:"
        )
        for line in regressions:
            print(f"  {line}")
        return 1
    print(f"\nOK: {shared} points within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
