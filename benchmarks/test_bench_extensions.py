"""Benchmarks for the paper's extension systems.

These regenerate the three ablation tables that go beyond the paper's
figures but follow directly from its text: channel scaling (the Crisp
95 % reconciliation, Section 6), the refresh-cost validation
(Section 4.1's assumption), and the double-bank core comparison
(Section 2.2's "effectively eight" remark).
"""

from __future__ import annotations


from repro.experiments.channel import run as run_channel
from repro.experiments.doublebank import run as run_doublebank
from repro.experiments.refresh_ablation import run as run_refresh


def test_channel_scaling(benchmark):
    table = benchmark.pedantic(run_channel, rounds=1, iterations=1)
    by_devices = {row[0]: row for row in table.rows}
    # Random loads on a 16-device channel approach Crisp's 95%.
    assert by_devices[16][1] > 93
    # A single device under random loads cannot.
    assert by_devices[1][1] < 70
    # The stream baseline barely moves with device count.
    assert abs(by_devices[16][2] - by_devices[1][2]) < 10


def test_refresh_ablation(benchmark):
    table = benchmark.pedantic(run_refresh, rounds=1, iterations=1)
    deltas = [row[4] for row in table.rows]
    # Refresh costs at most a few points anywhere.
    assert min(deltas) > -4.0
    assert all(row[5] > 0 for row in table.rows)


def test_doublebank_ablation(benchmark):
    table = benchmark.pedantic(run_doublebank, rounds=1, iterations=1)
    for row in table.rows:
        eight, doubled, sixteen = row[2], row[3], row[4]
        # "Effectively eight": the doubled core lands near the
        # 8-independent-bank device, never catastrophically below.
        assert doubled > 0.85 * eight
