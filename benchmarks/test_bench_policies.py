"""Ablation: MSU scheduling policies (paper Section 6 future work).

The paper's MSU uses simple round-robin and sketches two improvements:
a scheduler that avoids busy banks (Hong's thesis) and speculative
precharge/activate across page crossings.  This bench compares all
three on the configurations where the differences matter.
"""

from __future__ import annotations

import pytest

from repro.sim.runner import RunSpec, simulate

POLICIES = ("round-robin", "bank-aware", "speculative-precharge")


@pytest.mark.parametrize("policy", POLICIES)
def test_policy_on_conflicted_cli(benchmark, policy):
    """Aligned vectors on shallow-FIFO CLI: the bank-conflict-heavy
    case where conflict avoidance pays."""
    result = benchmark.pedantic(
        simulate,
        args=(RunSpec("daxpy", "cli", length=1024, fifo_depth=8,
                      alignment="aligned", policy=policy),),
        rounds=1,
        iterations=1,
    )
    assert result.percent_of_peak > 30


@pytest.mark.parametrize("policy", POLICIES)
def test_policy_on_long_vector_pi(benchmark, policy):
    """PI long vectors: page-crossing overheads are the limiter the
    speculative policy targets."""
    result = benchmark.pedantic(
        simulate,
        args=(RunSpec("vaxpy", "pi", length=1024, fifo_depth=64,
                      policy=policy),),
        rounds=1,
        iterations=1,
    )
    assert result.percent_of_peak > 80


@pytest.mark.parametrize("policy", POLICIES)
def test_policy_on_strided_pi(benchmark, policy):
    """Strided PI: frequent page crossings, the Figure 9 regime."""
    result = benchmark.pedantic(
        simulate,
        args=(RunSpec("vaxpy", "pi", length=1024, fifo_depth=128,
                      stride=32, policy=policy),),
        rounds=1,
        iterations=1,
    )
    assert result.percent_of_attainable > 30
