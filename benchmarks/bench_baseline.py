#!/usr/bin/env python
"""Produce ``BENCH_core.json``: simulator throughput per controller.

Runs a small kernel x controller x engine matrix end-to-end and
records best-of-N wall-clock and simulated cycles per second for each
point.  Every controller is measured on both the shared discrete-event
simulation kernel (``engine=event``) and the vectorized batch fast
path (``engine=batch``); each point records which engine produced it
so ``bench_compare.py`` never diffs one engine against the other.  CI
runs this after the pytest-benchmark suites and uploads the JSON as a
PR artifact so the cost of the simulation substrate is tracked over
time.

Usage::

    PYTHONPATH=src python benchmarks/bench_baseline.py [--output PATH]
        [--repeats N] [--length N]
"""

from __future__ import annotations

import argparse
import json
import platform
import subprocess
import sys
import time
from datetime import datetime, timezone
from typing import Callable, Dict, List

from repro.cache.controller import CachedNaturalOrderController
from repro.core.l2stream import L2StreamingController
from repro.core.smc import build_smc_system
from repro.cpu.kernels import KERNELS
from repro.memsys.config import MemorySystemConfig
from repro.naturalorder.controller import NaturalOrderController
from repro.naturalorder.random_driver import RandomAccessDriver
from repro.sim.batch import run_smc_batch
from repro.sim.engine import run_smc

BENCH_KERNELS = ("copy", "daxpy", "vaxpy")
BENCH_ENGINES = ("event", "batch")


def _git_sha() -> str:
    """HEAD commit of the working tree, or 'unknown' outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() or "unknown"


def _controllers(length: int) -> Dict[str, Callable[[str, str, str], object]]:
    """Map controller name -> callable(kernel, org, engine) -> result."""

    def smc(kernel: str, org: str, engine: str):
        config = getattr(MemorySystemConfig, org)()
        if engine == "batch":
            return run_smc_batch(
                KERNELS[kernel], config, length=length, fifo_depth=64
            )
        system = build_smc_system(
            KERNELS[kernel], config, length=length, fifo_depth=64
        )
        return run_smc(system)

    def natural(kernel: str, org: str, engine: str):
        controller = NaturalOrderController(getattr(MemorySystemConfig, org)())
        return controller.run(KERNELS[kernel], length=length, engine=engine)

    def cached(kernel: str, org: str, engine: str):
        controller = CachedNaturalOrderController(
            getattr(MemorySystemConfig, org)()
        )
        return controller.run(KERNELS[kernel], length=length, engine=engine)

    def l2stream(kernel: str, org: str, engine: str):
        controller = L2StreamingController(getattr(MemorySystemConfig, org)())
        return controller.run(KERNELS[kernel], length=length, engine=engine)

    def random(kernel: str, org: str, engine: str):
        driver = RandomAccessDriver(getattr(MemorySystemConfig, org)())
        return driver.run(length, seed=7, engine=engine)

    return {
        "smc": smc,
        "natural-order": natural,
        "cached-natural-order": cached,
        "l2-streaming": l2stream,
        "random-access": random,
    }


def bench_point(
    run: Callable[[str, str, str], object],
    kernel: str,
    org: str,
    engine: str,
    repeats: int,
) -> Dict[str, object]:
    best = float("inf")
    cycles = 0
    for _ in range(repeats):
        start = time.perf_counter()
        result = run(kernel, org, engine)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        cycles = result.cycles
    return {
        "kernel": kernel,
        "organization": org,
        "engine": engine,
        "repeats": repeats,
        "wall_ms": round(best * 1e3, 3),
        "simulated_cycles": cycles,
        "cycles_per_second": round(cycles / best) if best > 0 else None,
    }


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_core.json")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--length", type=int, default=1024)
    args = parser.parse_args(argv)

    results = []
    for name, run in _controllers(args.length).items():
        for kernel in BENCH_KERNELS:
            for org in ("cli", "pi"):
                for engine in BENCH_ENGINES:
                    point = bench_point(
                        run, kernel, org, engine, args.repeats
                    )
                    point["controller"] = name
                    results.append(point)
                    print(
                        f"{name:22s} {kernel:8s} {org:4s} {engine:6s} "
                        f"{point['wall_ms']:9.3f} ms  "
                        f"{point['cycles_per_second']:>10,} cyc/s"
                    )

    report = {
        "schema": "bench-core/3",
        "length": args.length,
        "repeats": args.repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "git_sha": _git_sha(),
        "generated_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "results": results,
    }
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(results)} points to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
