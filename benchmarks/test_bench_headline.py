"""Benchmark regenerating the Section 6 / abstract headline numbers."""

from __future__ import annotations

import pytest

from repro.experiments.headline import run


def test_headline_numbers(benchmark):
    tables = benchmark.pedantic(run, rounds=1, iterations=1)
    bounds, copy_smc, improvement, coverage = tables

    # Quoted eight-stream bounds reproduce within half a point.
    for row in bounds.rows:
        assert row[2] == pytest.approx(row[1], abs=0.5)

    # copy at 1024 elements on deep FIFOs lands within a point of the
    # paper's "over 98%".
    assert copy_smc.rows[0][2] > 97.0

    # Improvement factors bracket the abstract's 1.18x-2.25x within
    # ten percent at each end.
    factors = [row[4] for row in improvement.rows]
    assert min(factors) == pytest.approx(1.18, rel=0.10)
    assert max(factors) == pytest.approx(2.25, rel=0.10)
