"""Benchmark regenerating the L2-staging tradeoff tables."""

from __future__ import annotations

from repro.experiments.l2_tradeoff import run


def test_l2_tradeoff(benchmark):
    comparison, thrash = benchmark.pedantic(run, rounds=1, iterations=1)

    # The FIFO SBU beats L2 staging on every kernel/organization.
    for row in comparison.rows:
        assert row[4] > row[2]
        assert row[4] > row[3]

    # The thrash table collapses once the L2 is small & direct-mapped.
    ample = thrash.rows[0]
    worst = thrash.rows[-1]
    assert worst[1] < ample[1] / 3
    assert worst[2] > 100 * ample[2]
