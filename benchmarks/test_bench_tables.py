"""Benchmarks regenerating Figures 1 and 2 (the timing tables)."""

from __future__ import annotations

from repro.experiments.tables import figure1_table, figure2_table


def test_figure1(benchmark):
    """Figure 1: DRAM family timing comparison."""
    table = benchmark(figure1_table)
    assert len(table.rows) == 5
    assert table.rows[-1][-1] == 1600  # Direct RDRAM peak, MB/s


def test_figure2(benchmark):
    """Figure 2: Direct RDRAM -50 -800 timing parameters."""
    table = benchmark(figure2_table)
    by_name = {row[0]: row[2] for row in table.rows}
    assert by_name["t_RAC"] == 20
    assert by_name["t_RC"] == 34
