"""Benchmark regenerating the FPM heritage comparison (Section 3)."""

from __future__ import annotations

from repro.experiments.fpm_heritage import run


def test_fpm_heritage(benchmark):
    table = benchmark(run)
    for row in table.rows:
        natural, deepest, speedup = row[1], row[6], row[7]
        # Section 3: over 90% of attainable at deep FIFOs, and a solid
        # memory-level speedup over natural order.
        assert deepest > 90
        assert speedup > 2.0
        assert deepest > natural
