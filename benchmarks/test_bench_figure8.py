"""Benchmark regenerating Figure 8 (single-stream strided fills)."""

from __future__ import annotations

import pytest

from repro.experiments.figure8 import run


def test_figure8(benchmark):
    table = benchmark(run)
    strides = [row[0] for row in table.rows]
    cli = [row[1] for row in table.rows]
    pi = [row[2] for row in table.rows]
    assert strides == list(range(1, 33))
    # The paper's shape: both curves fall with stride up to the
    # cacheline size; PI sits above CLI; large strides deliver a
    # small fraction of the potential bandwidth.
    assert cli[0] == pytest.approx(33.33, abs=0.01)
    assert cli[3] == cli[31] == pytest.approx(8.33, abs=0.01)
    assert all(p > c for p, c in zip(pi, cli))
    assert pi[31] < 12
