"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures (or an
ablation the paper calls out) and records wall-clock cost through
pytest-benchmark.  Heavy simulation sweeps run a single round via
``benchmark.pedantic`` so the full harness stays in the tens of
seconds; analytic-only benches use normal calibration.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations



def run_once(benchmark, func, *args, **kwargs):
    """Benchmark a heavy function with one round and return its value."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
