"""Benchmark the sweep-execution backend: serial vs process pool.

Pins two properties of ``repro.exec``:

* pooled results are full-equality identical to serial results, and
* fanning a moderately heavy grid over workers does not cost more
  wall-clock than running it serially (a lenient guard — the pool
  must at least pay for its own startup).
"""

from __future__ import annotations

import os
import time

from repro.exec import run_specs
from repro.sim.sweep import Sweep

#: Heavy enough that pool startup amortizes (~40 ms per point).
GRID = Sweep(
    kernel=["copy", "daxpy", "vaxpy", "hydro"],
    organization=["cli", "pi"],
    length=2048,
    fifo_depth=[32, 128],
)


def _workers() -> int:
    return min(4, os.cpu_count() or 1)


def test_serial_sweep(benchmark):
    results = benchmark.pedantic(
        run_specs, args=(GRID.specs(),), rounds=1, iterations=1
    )
    assert len(results) == GRID.size


def test_pooled_sweep(benchmark):
    results = benchmark.pedantic(
        run_specs,
        args=(GRID.specs(),),
        kwargs={"workers": _workers()},
        rounds=1,
        iterations=1,
    )
    assert len(results) == GRID.size


def test_pool_speedup_guard(benchmark):
    """Pooled wall clock must not regress past serial wall clock."""
    specs = GRID.specs()
    workers = _workers()

    def measure():
        start = time.perf_counter()
        serial = run_specs(specs)
        serial_s = time.perf_counter() - start

        start = time.perf_counter()
        pooled = run_specs(specs, workers=workers)
        pooled_s = time.perf_counter() - start
        return serial, pooled, serial_s, pooled_s

    serial, pooled, serial_s, pooled_s = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    assert pooled == serial
    if workers > 1:
        # Lenient: on a loaded CI box a 4-way pool may not hit 4x, but
        # it must never be slower than 1.5x the serial run.
        assert pooled_s <= serial_s * 1.5, (
            f"pool regression: serial {serial_s:.2f}s, "
            f"pooled({workers}) {pooled_s:.2f}s"
        )
