"""Benchmark regenerating the cache-reality comparison.

Measures the paper's closing claim — realistic cache traffic widens
the SMC's advantage — as part of the harness.
"""

from __future__ import annotations

from repro.experiments.cache_reality import run


def test_cache_reality(benchmark):
    stride1, stride4 = benchmark.pedantic(run, rounds=1, iterations=1)

    # Stride 1: every realistic ratio is at least the idealized one
    # would suggest for copy (write-allocate makes copy much worse).
    copy_rows = [row for row in stride1.rows if row[0] == "copy"]
    for row in copy_rows:
        ideal, direct, smc_ratio = row[2], row[3], row[6]
        assert direct < ideal
        assert smc_ratio > 2.5

    # Stride 4: the SMC advantage is larger still on PI.
    pi_rows = [row for row in stride4.rows if row[1] == "PI"]
    assert all(row[6] > 3.5 for row in pi_rows)
