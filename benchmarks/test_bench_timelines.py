"""Benchmarks regenerating the Figure 5/6 command timelines."""

from __future__ import annotations

import pytest

from repro.experiments.timelines import three_stream_timeline


@pytest.mark.parametrize("org", ["cli", "pi"])
def test_three_stream_timeline(benchmark, org):
    """Figures 5/6: the {rd x; rd y; st z} loop's packet timeline."""
    timeline = benchmark(three_stream_timeline, org)
    # Successive load activates are t_RR apart, as both figures show.
    assert timeline.act_spacings[0] == 8
    assert timeline.table.rows
