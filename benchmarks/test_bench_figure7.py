"""Benchmarks regenerating Figure 7 (the 16-panel FIFO-depth sweep).

One benchmark per panel: kernel x organization x vector length, each
sweeping FIFO depths 8-128 with both vector alignments plus the
analytic limits — the exact series the paper plots.
"""

from __future__ import annotations

import pytest

from repro.cpu.kernels import PAPER_KERNELS, get_kernel
from repro.experiments.figure7 import run_panel


@pytest.mark.parametrize("length", [128, 1024])
@pytest.mark.parametrize("org", ["cli", "pi"])
@pytest.mark.parametrize("kernel", sorted(PAPER_KERNELS))
def test_figure7_panel(benchmark, kernel, org, length):
    panel = benchmark.pedantic(
        run_panel, args=(get_kernel(kernel), org, length), rounds=1, iterations=1
    )
    rows = panel.table.rows
    assert [row[0] for row in rows] == [8, 16, 32, 64, 128]
    # The SMC simulations and limits are physical percentages.
    for row in rows:
        assert all(0 < value <= 100.0001 for value in row[1:])
    # The deepest-FIFO staggered SMC beats the natural-order limit on
    # long vectors (the paper's headline claim for every kernel).
    if length == 1024:
        depth, cache, combined, staggered, aligned = rows[-1]
        assert staggered > cache
