"""Microbenchmarks of the simulator substrate itself.

Not a paper figure: these track the cost of the device model, the
protocol auditor, and the cycle engine, so regressions in simulation
throughput are visible alongside the experiment benches.
"""

from __future__ import annotations

from repro.core.smc import build_smc_system
from repro.cpu.kernels import DAXPY
from repro.memsys.config import MemorySystemConfig
from repro.rdram.audit import audit_trace
from repro.rdram.device import RdramDevice
from repro.rdram.packets import BusDirection
from repro.sim.engine import run_smc


def test_device_issue_throughput(benchmark):
    """Raw COL-issue rate of the device model (page-mode burst)."""

    def burst():
        device = RdramDevice(record_trace=False)
        device.issue_act(0, 0, 0)
        now = 0
        for column in range(64):
            now = device.issue_col(0, 0, column, now, BusDirection.READ).col.end
        return device.bytes_transferred

    assert benchmark(burst) == 64 * 16


def test_audit_throughput(benchmark):
    """Auditor cost over a realistic 1024-element daxpy trace."""
    system = build_smc_system(
        DAXPY, MemorySystemConfig.pi(), length=1024, fifo_depth=64,
        record_trace=True,
    )
    run_smc(system)
    trace = system.device.trace

    report = benchmark(audit_trace, trace)
    assert report.data_packets == 3 * 512


def test_engine_cycles_per_second(benchmark):
    """End-to-end SMC simulation throughput (build + run)."""

    def simulate():
        system = build_smc_system(
            DAXPY, MemorySystemConfig.cli(), length=1024, fifo_depth=64
        )
        return run_smc(system)

    result = benchmark(simulate)
    assert result.percent_of_peak > 80
