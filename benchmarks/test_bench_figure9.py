"""Benchmark regenerating Figure 9 (vaxpy at non-unit strides)."""

from __future__ import annotations

from repro.experiments.figure9 import STRIDES, run


def test_figure9(benchmark):
    table = benchmark.pedantic(run, rounds=1, iterations=1)
    assert [row[0] for row in table.rows] == list(STRIDES)
    by_stride = {row[0]: row for row in table.rows}

    # Cache bounds are flat across strides beyond the cacheline.
    assert by_stride[4][3] == by_stride[60][3]
    assert by_stride[4][4] == by_stride[60][4]

    # PI-SMC starts far above the cache bound at small strides
    # ("up to 2.2 times the maximum effective bandwidth of the naive
    # approach") and declines with stride.
    assert by_stride[4][1] > 2.0 * by_stride[4][3]
    assert by_stride[60][1] < by_stride[4][1]

    # CLI-SMC dips at strides that are multiples of 16 (the paper's
    # "performs worse for strides that are multiples of 16").
    assert by_stride[16][2] < by_stride[12][2]
    assert by_stride[48][2] < by_stride[44][2]
