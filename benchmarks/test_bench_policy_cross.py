"""Ablation: interleave x page-policy cross pairings.

The paper evaluates the two diagonal design points — CLI with a
closed-page policy and PI with an open-page policy ("they represent
two extreme points of the design space").  This bench fills in the
off-diagonal pairings to show the diagonals are the sensible ones.
"""

from __future__ import annotations

import pytest

from repro.memsys.config import Interleaving, MemorySystemConfig, PagePolicy
from repro.sim.runner import RunSpec, simulate

PAIRINGS = {
    "cli-closed": MemorySystemConfig(
        interleaving=Interleaving.CACHELINE, page_policy=PagePolicy.CLOSED
    ),
    "cli-open": MemorySystemConfig(
        interleaving=Interleaving.CACHELINE, page_policy=PagePolicy.OPEN
    ),
    "pi-closed": MemorySystemConfig(
        interleaving=Interleaving.PAGE, page_policy=PagePolicy.CLOSED
    ),
    "pi-open": MemorySystemConfig(
        interleaving=Interleaving.PAGE, page_policy=PagePolicy.OPEN
    ),
}


@pytest.mark.parametrize("pairing", sorted(PAIRINGS))
def test_interleave_page_policy_cross(benchmark, pairing):
    result = benchmark.pedantic(
        simulate,
        args=(RunSpec("daxpy", PAIRINGS[pairing], length=1024, fifo_depth=64),),
        rounds=1,
        iterations=1,
    )
    assert result.percent_of_peak > 30


def test_pi_closed_wastes_page_locality(benchmark):
    """Precharging after every burst on a page-interleaved system
    forfeits the open-page hits that make PI attractive for streams."""

    def compare():
        open_page = simulate(RunSpec(
            "daxpy", PAIRINGS["pi-open"], length=1024, fifo_depth=64
        ))
        closed_page = simulate(RunSpec(
            "daxpy", PAIRINGS["pi-closed"], length=1024, fifo_depth=64
        ))
        return open_page, closed_page

    open_page, closed_page = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert open_page.activations < closed_page.activations
