#!/usr/bin/env python3
"""Choosing an SMC FIFO depth experimentally.

Section 6: "The best FIFO depth must be chosen experimentally, since
the SMC performance limits developed in Section 5.2 do not help in
calculating appropriate FIFO depths for a computation a priori."

This example sweeps FIFO depths for every paper kernel at two vector
lengths and reports the empirically best depth next to what the
combined analytic limit would have suggested — showing where they
agree (long vectors) and where the startup delay flips the answer
(short vectors).

Run: python examples/fifo_depth_tuning.py
"""

from repro import KERNELS, MemorySystemConfig, RunSpec, simulate, smc_bound

DEPTHS = (8, 16, 32, 64, 128)


def best_depth(kernel_name: str, org: str, length: int):
    """Sweep depths; return (best depth, its %, bound-suggested depth)."""
    kernel = KERNELS[kernel_name]
    config = getattr(MemorySystemConfig, org)()
    simulated = {}
    bounded = {}
    for depth in DEPTHS:
        simulated[depth] = simulate(RunSpec(
            kernel, config, length=length, fifo_depth=depth
        )).percent_of_peak
        bounded[depth] = smc_bound(
            config,
            kernel.num_read_streams,
            kernel.num_write_streams,
            length,
            depth,
        ).percent_combined_limit
    best_sim = max(simulated, key=simulated.get)
    best_bound = max(bounded, key=bounded.get)
    return best_sim, simulated[best_sim], best_bound


def main() -> None:
    for length in (128, 1024):
        print(f"=== {length}-element vectors ===")
        print(f"{'kernel':8s} {'org':4s} {'best f (sim)':>12s} "
              f"{'% peak':>7s} {'best f (bound)':>14s}")
        for kernel_name in ("copy", "daxpy", "hydro", "vaxpy"):
            for org in ("cli", "pi"):
                depth, percent, suggested = best_depth(kernel_name, org, length)
                print(f"{kernel_name:8s} {org:4s} {depth:12d} "
                      f"{percent:7.1f} {suggested:14d}")
        print()
    print("Short vectors punish deep FIFOs (startup delay); long vectors")
    print("reward them (fewer bus turnarounds per tour).")


if __name__ == "__main__":
    main()
