#!/usr/bin/env python3
"""Inspecting a simulation: traces, timelines, and derived metrics.

Every run of the library's simulators can record its full packet
trace; this example shows the three inspection tools working on one
daxpy run: the Gantt-style timing diagram (the view the paper's
Figures 5/6 draw by hand), trace-derived metrics (bus utilizations,
per-bank pressure, turnarounds), and the protocol auditor that proves
the run obeyed every datasheet constraint.

Run: python examples/inspect_a_run.py
"""

from repro import (
    KERNELS,
    MemorySystemConfig,
    audit_trace,
    bank_imbalance,
    build_smc_system,
    measure_trace,
    run_smc,
)
from repro.rdram import render_trace


def main() -> None:
    config = MemorySystemConfig.pi()
    system = build_smc_system(
        KERNELS["daxpy"], config, length=512, fifo_depth=32,
        record_trace=True,
    )
    result = run_smc(system)
    trace = system.device.trace

    print("--- first 120 cycles, Gantt view (cf. the paper's Figure 6) ---")
    print(render_trace(trace, until=120))

    print("\n--- protocol audit ---")
    report = audit_trace(trace, config.timing)
    print(f"legal: {report.row_packets} row packets, "
          f"{report.col_packets} col packets, "
          f"{report.data_packets} data packets, "
          f"{report.turnarounds} bus turnarounds, "
          f"{report.banks_touched} banks touched")

    print("\n--- trace-derived metrics ---")
    metrics = measure_trace(trace, config.timing, window=256)
    print(f"data bus utilization: {metrics.data_bus_utilization:6.1%} "
          f"(simulator reported {result.percent_of_peak:.1f}% of peak)")
    print(f"row bus utilization:  {metrics.row_bus_utilization:6.1%}")
    print(f"col bus utilization:  {metrics.col_bus_utilization:6.1%}")
    print(f"turnaround cycles lost: {metrics.turnaround_cycles}")
    print(f"bank imbalance (max/mean): "
          f"{bank_imbalance(metrics, num_banks=8):.2f}")

    print("\nper-bank activity:")
    for bank, stats in metrics.bank_stats.items():
        print(f"  bank {bank}: {stats.activations:3d} ACT, "
              f"{stats.precharges:3d} PRER, "
              f"{stats.column_accesses:4d} COL")

    print("\ndata-bus utilization timeline (256-cycle windows):")
    for start, utilization in metrics.utilization_timeline:
        bar = "#" * round(40 * utilization)
        print(f"  {start:6d} |{bar:<40s}| {utilization:5.1%}")


if __name__ == "__main__":
    main()
