#!/usr/bin/env python3
"""Gather/scatter scenario: access order for irregular data.

The paper's thesis — request order determines delivered bandwidth —
applies beyond affine streams.  Its related-work section points at the
Impulse controller's scatter/gather remapping and notes the SMC's
dynamic access ordering "can be adapted to further improve bandwidth
utilization" there.  This example gathers a sparse vector through the
SMC under four index orderings and shows bandwidth varying by 4x with
*no change in the data touched*, plus the effect of simply sorting the
index vector (what an Impulse-style remap or a preprocessing pass
buys).

Run: python examples/sparse_gather.py
"""

import random

from repro import MemorySystemConfig, simulate_gather

N = 1024
UNIVERSE = 8 * N  # gather 1 in 8 elements of a large table


def index_patterns():
    rng = random.Random(2024)
    dense = list(range(N))
    blocked = [base + offset for base in range(0, UNIVERSE, UNIVERSE // 8)
               for offset in range(N // 8)]
    sparse_sorted = sorted(rng.sample(range(UNIVERSE), N))
    sparse_random = rng.sample(range(UNIVERSE), N)
    return (
        ("dense (unit stride)", dense),
        ("blocked (8 runs)", blocked),
        ("sparse, sorted", sparse_sorted),
        ("sparse, random", sparse_random),
    )


def main() -> None:
    patterns = index_patterns()
    print(f"gather y[i] = x[idx[i]] of {N} elements from a "
          f"{UNIVERSE}-element table, SMC with 64-element FIFOs:\n")
    print(f"{'index pattern':22s} {'CLI %peak':>10s} {'PI %peak':>10s} "
          f"{'PI row-acts':>12s}")
    for name, indices in patterns:
        row = f"{name:22s}"
        for org in ("cli", "pi"):
            config = getattr(MemorySystemConfig, org)()
            result = simulate_gather(indices, config, fifo_depth=64)
            row += f" {result.percent_of_peak:9.1f}%"
            if org == "pi":
                row += f" {result.activations:12d}"
        print(row)
    print("\nSame elements, same hardware — the only variable is order.")
    print("Sorting a random sparse index vector recovers most of the")
    print("page locality, which is what an Impulse-style remapping")
    print("controller would arrange in front of this memory system.")


if __name__ == "__main__":
    main()
