#!/usr/bin/env python3
"""DRAM generations: why Direct RDRAM merited the paper's study.

Recreates the Figure 1 comparison and extends it with a simple
streaming model: for each DRAM family, the sustained bandwidth of a
unit-stride read stream is bounded by one page-mode transfer per t_PC
plus a t_RAC page miss per DRAM page — the same first-order model the
paper's Section 2 uses to motivate packetized, pipelined RDRAMs.

Run: python examples/dram_generations.py
"""

from repro import DRAM_FAMILIES
from repro.analytic import generations_table

PAGE_BYTES = 1024


def streaming_bandwidth(family) -> float:
    """First-order sustained bandwidth for a dense read stream."""
    transfers_per_page = PAGE_BYTES / family.bus_width_bytes
    page_time_ns = family.t_rac_ns + transfers_per_page * family.t_pc_ns
    return PAGE_BYTES / (page_time_ns * 1e-9)


def main() -> None:
    print(f"{'family':16s} {'tRAC':>5s} {'tPC':>5s} {'bus':>4s} "
          f"{'peak MB/s':>10s} {'stream MB/s':>12s} {'% of peak':>10s}")
    for key in ("fast-page-mode", "edo", "burst-edo", "sdram", "direct-rdram"):
        family = DRAM_FAMILIES[key]
        peak = family.peak_bandwidth_bytes_per_sec / 1e6
        stream = streaming_bandwidth(family) / 1e6
        print(f"{family.name:16s} {family.t_rac_ns:5.0f} {family.t_pc_ns:5.0f} "
              f"{family.bus_width_bytes:4d} {peak:10.0f} {stream:12.0f} "
              f"{100 * stream / peak:9.1f}%")
    print("\nDirect RDRAM's 1.6 GB/s peak is 2-6x the earlier families' —")
    print("but as the paper shows, *access order* decides how much of it")
    print("a streaming computation actually sees.\n")
    print(generations_table().render())


if __name__ == "__main__":
    main()
