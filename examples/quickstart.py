#!/usr/bin/env python3
"""Quickstart: simulate one streaming kernel on both memory organizations.

Runs daxpy (y[i] = a*x[i] + y[i]) on a single Direct RDRAM device under
the paper's two organizations — cacheline-interleaved/closed-page (CLI)
and page-interleaved/open-page (PI) — with and without the Stream
Memory Controller, and compares against the analytic limits.

Everything here uses the curated top-level API (see docs/api.md):
``repro.RunSpec`` + ``repro.simulate`` for single runs and
``repro.sweep`` for grids; no deep module paths needed.

Run: python examples/quickstart.py
"""

from repro import (
    KERNELS,
    MemorySystemConfig,
    NaturalOrderController,
    RunSpec,
    natural_order_bound,
    simulate,
    smc_bound,
    sweep,
)


def main() -> None:
    kernel = KERNELS["daxpy"]
    print(f"kernel: {kernel.name}  ({kernel.expression})")
    print(f"streams: {kernel.num_read_streams} read + "
          f"{kernel.num_write_streams} write\n")

    for org_name in ("cli", "pi"):
        config = getattr(MemorySystemConfig, org_name)()
        print(f"--- {config.describe()} ---")

        baseline = NaturalOrderController(config).run(kernel, length=1024)
        cache_limit = natural_order_bound(
            config, kernel.num_read_streams, kernel.num_write_streams
        )
        print(f"natural-order cacheline accesses: "
              f"{baseline.percent_of_peak:5.1f}% of peak "
              f"(analytic limit {cache_limit.percent_of_peak:.1f}%)")

        smc = simulate(RunSpec(
            kernel="daxpy", organization=org_name, length=1024,
            fifo_depth=128,
        ))
        limit = smc_bound(
            config, kernel.num_read_streams, kernel.num_write_streams,
            length=1024, fifo_depth=128,
        )
        print(f"SMC (128-element FIFOs):          "
              f"{smc.percent_of_peak:5.1f}% of peak "
              f"(combined limit {limit.percent_combined_limit:.1f}%)")
        print(f"SMC improvement over natural-order limit: "
              f"{smc.percent_of_peak / cache_limit.percent_of_peak:.2f}x")
        print(f"effective bandwidth: "
              f"{smc.effective_bandwidth_bytes_per_sec / 1e9:.2f} GB/s "
              f"of the 1.6 GB/s peak\n")

    # A sweep in one call: FIFO depth sensitivity for daxpy on PI.
    # (Add workers=N for a process pool, cache="DIR" to reuse results.)
    print("--- daxpy on PI: % of peak vs FIFO depth ---")
    for result in sweep(kernel="daxpy", organization="pi",
                        fifo_depth=[8, 16, 32, 64, 128]):
        print(f"f={result.fifo_depth:3d}  {result.percent_of_peak:5.1f}%")


if __name__ == "__main__":
    main()
