#!/usr/bin/env python3
"""Where did the bandwidth go?  Exact stall attribution for a run.

The simulators report *how much* of peak bandwidth a configuration
delivers; the observability layer explains *why* the rest was lost.
Attach an Instrumentation to a run and every idle DATA-bus cycle is
classified into exactly one bucket — write-to-read turnaround,
precharge/activate latency, command-bus occupancy, FIFO stalls,
refresh interference, scheduler idling, or the final drain — with the
buckets plus busy cycles summing exactly to the run's cycle count.

The same machinery drives ``repro-simulate --stats/--json/--trace-out``
and the ``repro-trace`` file inspector; exports open directly in
Perfetto (https://ui.perfetto.dev).

Run: python examples/stall_attribution.py
"""

from repro import Instrumentation, RunSpec, attribute_stalls, simulate
from repro.obs.export import write_chrome_trace


def attribute(kernel: str, org: str, **kwargs) -> None:
    obs = Instrumentation()
    result = simulate(
        RunSpec(kernel, org, length=1024, fifo_depth=64, **kwargs), obs=obs
    )
    stalls = attribute_stalls(obs)
    print(f"--- {kernel} on {result.organization} "
          f"({result.percent_of_peak:.2f}% of peak) ---")
    print(stalls.table())
    print()


def main() -> None:
    # The closed-page CLI organization pays for a precharge/activate
    # on every cacheline; the open-page PI organization trades most of
    # that for occasional FIFO and scheduling stalls.
    attribute("daxpy", "cli")
    attribute("daxpy", "pi")

    # Refresh is ignored by the paper; measured, it costs little.
    attribute("daxpy", "pi", refresh=True)

    # Everything above is also exportable for interactive inspection.
    obs = Instrumentation()
    result = simulate(RunSpec("vaxpy", "pi", length=1024), obs=obs)
    stalls = attribute_stalls(obs)
    events = write_chrome_trace("/tmp/repro_vaxpy_trace.json", obs,
                                stalls=stalls.as_dict())
    print(f"wrote {events} trace events to /tmp/repro_vaxpy_trace.json "
          "(open in Perfetto, or run: repro-trace "
          "/tmp/repro_vaxpy_trace.json --stalls)")
    assert stalls.busy + stalls.idle == result.cycles


if __name__ == "__main__":
    main()
