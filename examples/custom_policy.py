#!/usr/bin/env python3
"""Extending the SMC: writing a custom MSU scheduling policy.

The paper's conclusion invites exploration: "More sophisticated access
ordering mechanisms are certainly possible, and we have begun
investigating a few."  This example implements one from scratch — a
writes-last policy that serves every read FIFO before touching write
FIFOs, minimizing write-to-read bus turnarounds per tour — and races
it against the built-in policies on the paper's benchmark kernels.

Run: python examples/custom_policy.py
"""

from typing import Optional

from repro import KERNELS, RunSpec, SchedulingPolicy, simulate
from repro.core.sbu import StreamBufferUnit
from repro.rdram.device import RdramDevice


class WritesLastPolicy(SchedulingPolicy):
    """Serve serviceable read FIFOs round-robin; drain writes only
    when no read FIFO can accept more data."""

    name = "writes-last"

    def choose(
        self,
        cycle: int,
        sbu: StreamBufferUnit,
        current: int,
        device: RdramDevice,
    ) -> Optional[int]:
        count = len(sbu)
        fallback = None
        for offset in range(current, current + count):
            index = offset % count
            fifo = sbu[index]
            if not fifo.serviceable:
                continue
            if fifo.is_read:
                return index
            if fallback is None:
                fallback = index
        return fallback


def main() -> None:
    policies = ("round-robin", "bank-aware", WritesLastPolicy())
    print(f"{'kernel':8s} {'org':4s}" + "".join(
        f" {name:>14s}" for name in
        ("round-robin", "bank-aware", "writes-last")
    ))
    for kernel_name in ("copy", "daxpy", "hydro", "vaxpy"):
        for org in ("cli", "pi"):
            row = f"{kernel_name:8s} {org:4s}"
            for policy in policies:
                result = simulate(RunSpec(
                    KERNELS[kernel_name], org, length=1024, fifo_depth=64,
                    policy=policy,
                ))
                row += f" {result.percent_of_peak:13.1f}%"
            print(row)
    print("\nAll three deliver the same data (the engine verifies every")
    print("element moves exactly once); they differ only in ordering —")
    print("which is the paper's whole point.")


if __name__ == "__main__":
    main()
