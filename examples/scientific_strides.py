#!/usr/bin/env python3
"""Scientific-computing scenario: strided vector access.

Matrix codes walk columns of row-major arrays at non-unit stride —
the regime where Figures 8 and 9 show DRAM bandwidth collapsing.  This
example runs vaxpy (the inner loop of matrix-vector multiplication by
diagonals) across strides, comparing the SMC against the natural-order
cacheline limit on both organizations, and prints where each approach
stands as stride grows.

Run: python examples/scientific_strides.py
"""

from repro import KERNELS, MemorySystemConfig, RunSpec, natural_order_bound, simulate

STRIDES = (1, 2, 4, 8, 16, 32, 64)


def main() -> None:
    kernel = KERNELS["vaxpy"]
    print(f"kernel: {kernel.name}  ({kernel.expression})")
    print("percent of PEAK bandwidth (1.6 GB/s); attainable is 50% of")
    print("peak for strides >= 2 (half of every DATA packet is waste)\n")
    header = f"{'stride':>6s}"
    for org in ("cli", "pi"):
        header += f"  {org.upper() + ' SMC':>9s}  {org.upper() + ' cache':>9s}"
    print(header)
    for stride in STRIDES:
        row = f"{stride:6d}"
        for org in ("cli", "pi"):
            config = getattr(MemorySystemConfig, org)()
            smc = simulate(RunSpec(
                kernel, config, length=1024, fifo_depth=128, stride=stride
            ))
            cache = natural_order_bound(
                config,
                kernel.num_read_streams,
                kernel.num_write_streams,
                stride=stride,
            )
            row += f"  {smc.percent_of_peak:9.1f}  {cache.percent_of_peak:9.1f}"
        print(row)
    print("\nTakeaways (matching the paper's Figure 9 discussion):")
    print(" * beyond the 4-word cacheline, natural-order fills waste 3/4")
    print("   of every line they move;")
    print(" * the SMC only fetches packets that contain stream data, so")
    print("   it holds on to most of the attainable bandwidth;")
    print(" * CLI-SMC dips at strides that are multiples of 16, where the")
    print("   interleave maps every access to one or two banks.")


if __name__ == "__main__":
    main()
