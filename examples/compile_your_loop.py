#!/usr/bin/env python3
"""Compiling a loop from source to a simulated SMC run.

Section 3: "The compiler detects the presence of streams ... and
generates code to transmit information about those streams (base
address, stride, number of elements, and whether the stream is being
read or written) to the hardware at runtime."

This example feeds loop bodies — including the paper's own kernels,
written as source — through the library's stream detector, shows the
descriptors the "compiler" would hand the SMC, auto-selects a FIFO
depth, and simulates the result.

Run: python examples/compile_your_loop.py
"""

from repro.compiler import choose_fifo_depth, compile_loop, simulate_loop
from repro.errors import CompileError

LOOPS = (
    ("copy", "y[i] = x[i]"),
    ("daxpy", "y[i] = a*x[i] + y[i]"),
    ("hydro", "x[i] = q + y[i]*(r*zx[i+10] + t*zx[i+11])"),
    ("vaxpy", "y[i] = a[i]*x[i] + y[i]"),
    ("wave stencil", "u[i] = 2*v[i] - u[i] + c*(v[i+1] + v[i])"),
    ("deinterleave", "l[i] = s[2*i]; r[i] = s[2*i + 1]"),
)

REJECTED = (
    ("indirect gather", "y[i] = table[idx[i]]"),
    ("non-linear", "y[i] = x[i*i]"),
)


def main() -> None:
    for name, source in LOOPS:
        kernel = compile_loop(source.replace(";", "\n"), name=name)
        print(f"{name}: {source}")
        for spec in kernel.streams:
            subscript = f"{spec.stride_factor}*i+{spec.offset}"
            print(f"   stream {spec.name:12s} vector={spec.vector:5s} "
                  f"{spec.direction.value:5s} subscript={subscript}")
        for org in ("cli", "pi"):
            depth = choose_fifo_depth(kernel, org, length=1024)
            result = simulate_loop(
                source.replace(";", "\n"), org, length=1024, fifo_depth=depth
            )
            print(f"   {org.upper():3s}: f={depth:3d} -> "
                  f"{result.percent_of_peak:5.1f}% of peak")
        print()
    print("Loops the SMC's descriptor format cannot express are rejected:")
    for name, source in REJECTED:
        try:
            compile_loop(source)
        except CompileError as error:
            print(f"   {name}: {error}")


if __name__ == "__main__":
    main()
