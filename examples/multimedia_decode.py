#!/usr/bin/env python3
"""Multimedia scenario: sustained bandwidth for a video pipeline.

The paper's introduction motivates streaming hardware with multi-media
codecs: large frame buffers visited once per pass, no temporal
locality.  This example models two inner loops of a decode pipeline —
a frame copy (motion-compensation reference fetch) and a saturating
blend written as a triad — on a single Direct RDRAM, and converts the
delivered bandwidth into the video resolution the memory system could
sustain at 30 frames per second.

Run: python examples/multimedia_decode.py
"""

from repro import KERNELS, RunSpec, simulate

FPS = 30
BYTES_PER_PIXEL = 2  # 16-bit YUV

#: (name, kernel, passes over each frame the stage makes)
STAGES = (
    ("reference fetch (copy)", "copy", 2),
    ("blend/composite (triad)", "triad", 3),
)


def main() -> None:
    print("Sustained-bandwidth budget for a 30 fps decode pipeline on")
    print("one Direct RDRAM (1.6 GB/s peak), CLI vs PI, with an SMC:\n")
    for stage_name, kernel_name, passes in STAGES:
        kernel = KERNELS[kernel_name]
        print(f"stage: {stage_name}  [{kernel.expression}]")
        for org in ("cli", "pi"):
            result = simulate(RunSpec(
                kernel, org, length=1024, fifo_depth=128
            ))
            bandwidth = result.effective_bandwidth_bytes_per_sec
            pixels_per_frame = bandwidth / (FPS * passes * BYTES_PER_PIXEL)
            # Report as square-ish 16:9 resolution.
            height = int((pixels_per_frame * 9 / 16) ** 0.5)
            width = height * 16 // 9
            print(f"  {org.upper():3s}: {result.percent_of_peak:5.1f}% of peak "
                  f"-> {bandwidth / 1e9:.2f} GB/s "
                  f"-> sustains ~{width}x{height} @ {FPS} fps")
        print()
    print("The SMC keeps either organization near peak; without it the")
    print("natural-order limit (44-80% depending on the loop) cuts the")
    print("sustainable resolution accordingly.")


if __name__ == "__main__":
    main()
